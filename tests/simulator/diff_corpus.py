"""The byte-identity differential corpus for the simulator core.

One shared definition of every workload the event-queue engine must
reproduce *byte-identically*: trace replays (bench cases, fault
campaigns, link-delay variants), the full certificate verify corpus
(every NAS benchmark at both paper scales on generated/mesh/torus),
and open-loop load points.  Two consumers read it:

* ``scripts/gen_simulator_golden.py`` — regenerates the committed
  oracle under ``tests/simulator/golden/`` (first frozen from the
  pre-rewrite engine; refreshed whenever the *payload shape* changes,
  with the unchanged fields diffed against the previous goldens);
* ``tests/simulator/test_event_queue_diff.py`` — replays every case
  through the current engine and asserts canonical-JSON equality
  against the goldens, which are the sole oracle now that the vendored
  pre-rewrite ``legacy_engine`` has been retired.

Every runner takes the simulate/replay/open-loop callable as an
argument so the same case definitions can drive any engine
implementation.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs import enabled_observability
from repro.eval.serialize import loadpoint_to_dict, result_to_dict
from repro.simulator.config import SimConfig

#: Cases too slow for the fast CI lane run only in the nightly sweep.
FAST, SLOW = "fast", "slow"


@dataclass(frozen=True)
class TraceCase:
    """One trace-replay case: a program on a topology, optionally with
    link delays, a fault scenario, and an observability capture."""

    name: str
    build: Callable[[], dict]  # -> kwargs for simulate()
    lane: str = FAST
    obs_sample_every: Optional[int] = None  # capture obs when set


@dataclass(frozen=True)
class ReplayCase:
    """One verify-corpus replay: a certified pattern on a topology."""

    name: str
    build: Callable[[], dict]  # -> kwargs for replay_pattern()
    lane: str = FAST


@dataclass(frozen=True)
class OpenLoopCase:
    """One open-loop load point."""

    name: str
    build: Callable[[], dict]  # -> kwargs for run_open_loop()
    lane: str = FAST


# ---------------------------------------------------------------------------
# Trace cases (bench corpus + fault campaigns)
# ---------------------------------------------------------------------------


def _nas(name: str, n: int):
    from repro.workloads.nas import benchmark

    return benchmark(name, n)


def _cg8_mesh() -> dict:
    from repro.topology import mesh

    return {"program": _nas("cg", 8).program, "topology": mesh(4, 2),
            "config": SimConfig(max_cycles=5_000_000)}


def _cg8_torus() -> dict:
    from repro.topology import torus

    return {"program": _nas("cg", 8).program, "topology": torus(4, 2),
            "config": SimConfig(max_cycles=5_000_000)}


def _cg8_generated() -> dict:
    from repro.synthesis import generate_network

    bench = _nas("cg", 8)
    topology = generate_network(bench.pattern, seed=0, restarts=2).topology
    return {"program": bench.program, "topology": topology,
            "config": SimConfig(max_cycles=5_000_000)}


def _mg8_torus() -> dict:
    from repro.topology import torus

    return {"program": _nas("mg", 8).program, "topology": torus(4, 2),
            "config": SimConfig(max_cycles=5_000_000)}


def _cg8_mesh_delays() -> dict:
    from repro.topology import mesh

    topology = mesh(4, 2)
    delays = {
        link.link_id: 1 + link.link_id % 3 for link in topology.network.links
    }
    return {"program": _nas("cg", 8).program, "topology": topology,
            "link_delays": delays, "config": SimConfig(max_cycles=5_000_000)}


def _idle_heavy(n: int, side: Tuple[int, int], messages: int) -> dict:
    from repro.topology import mesh
    from repro.workloads.events import Program, RecvEvent, SendEvent

    events: List[tuple] = [()] * n
    events[0] = tuple(SendEvent(dest=1, size_bytes=64) for _ in range(messages))
    events[1] = tuple(RecvEvent(source=0) for _ in range(messages))
    program = Program(name="idle-heavy", num_processes=n, events=tuple(events))
    return {"program": program, "topology": mesh(*side),
            "config": SimConfig(max_cycles=5_000_000)}


def _deep_queue() -> dict:
    from repro.topology import mesh
    from repro.workloads.events import Program, RecvEvent, SendEvent

    sends = tuple(SendEvent(dest=1, size_bytes=64) for _ in range(200))
    recvs = tuple(RecvEvent(source=0) for _ in range(200))
    program = Program(name="deep-queue", num_processes=2, events=(sends, recvs))
    return {"program": program, "topology": mesh(2, 1),
            "config": SimConfig(max_cycles=5_000_000)}


def _faulted(base: Callable[[], dict], windows) -> dict:
    """Wrap a trace case with transient link-fault windows.

    ``windows`` maps a link-selection ("all" or a fraction) to one or
    more ``(start, end)`` outage intervals.
    """
    from repro.faults import FaultScenario, LinkFault
    from repro.faults.state import FaultState

    kwargs = base()
    topology = kwargs["topology"]
    links = [link.link_id for link in topology.network.links]
    faults = []
    for selection, intervals in windows:
        chosen = links if selection == "all" else links[: max(1, len(links) // 2)]
        for link_id in chosen:
            for start, end in intervals:
                faults.append(LinkFault(link_id, start=start, end=end))
    scenario = FaultScenario.of(*faults, name="diff-corpus")
    kwargs["fault_state"] = FaultState(topology.network, scenario)
    kwargs["config"] = SimConfig(max_cycles=3_000_000)
    return kwargs


TRACE_CASES: Tuple[TraceCase, ...] = (
    TraceCase("cg8-mesh4x2", _cg8_mesh, lane=SLOW, obs_sample_every=512),
    TraceCase("cg8-generated", _cg8_generated, lane=FAST),
    TraceCase("mg8-torus4x2", _mg8_torus, lane=FAST, obs_sample_every=512),
    TraceCase("cg8-mesh4x2-linkdelays", _cg8_mesh_delays, lane=SLOW),
    TraceCase("idle-heavy-mesh8x8", lambda: _idle_heavy(64, (8, 8), 400),
              lane=FAST),
    TraceCase("deep-queue-mesh2x1", _deep_queue, lane=FAST),
    TraceCase(
        "faults-cg8-mesh4x2-all-links",
        lambda: _faulted(_cg8_mesh, [("all", [(3000, 3800)])]),
        lane=FAST,
        obs_sample_every=512,
    ),
    TraceCase(
        "faults-cg8-mesh4x2-double-window",
        lambda: _faulted(_cg8_mesh, [("half", [(3000, 3600), (8000, 8600)])]),
        lane=SLOW,
    ),
    TraceCase(
        "faults-cg8-torus4x2-all-links",
        lambda: _faulted(_cg8_torus, [("all", [(3000, 3800)])]),
        lane=SLOW,
    ),
)


def run_trace_case(case: TraceCase, simulate_fn: Callable) -> dict:
    """Run one trace case; the payload is the byte-identity unit."""
    kwargs = case.build()
    obs = None
    if case.obs_sample_every is not None:
        obs = enabled_observability(sample_every=case.obs_sample_every)
        kwargs["obs"] = obs
    result = simulate_fn(**kwargs)
    payload = {"result": result_to_dict(result)}
    if obs is not None:
        payload["obs"] = obs.metrics.snapshot(include_wall=False)
    return payload


# ---------------------------------------------------------------------------
# Verify corpus (the 30-certificate replay set)
# ---------------------------------------------------------------------------


def verify_corpus_cases() -> Tuple[ReplayCase, ...]:
    """The full certificate corpus: every NAS benchmark at both paper
    scales on the generated network and the mesh/torus baselines.

    The small sizes run in the fast lane; the large (16-node) replays
    are nightly-only.
    """
    from repro.workloads.nas import (
        BENCHMARK_NAMES,
        PAPER_LARGE_SIZE,
        PAPER_SMALL_SIZES,
    )

    cases = []
    for name in BENCHMARK_NAMES:
        for label in ("small", "large"):
            n = PAPER_SMALL_SIZES[name] if label == "small" else PAPER_LARGE_SIZE
            for kind in ("generated", "mesh", "torus"):

                def build(name=name, n=n, kind=kind) -> dict:
                    from repro.eval.runner import prepare

                    setup = prepare(name, n, seed=0)
                    return {
                        "topology": setup.topology(kind),
                        "pattern": setup.benchmark.pattern,
                        "link_delays": setup.link_delays(kind),
                    }

                cases.append(
                    ReplayCase(
                        f"{name}-{n}-{kind}",
                        build,
                        lane=FAST if label == "small" else SLOW,
                    )
                )
    return tuple(cases)


def run_replay_case(case: ReplayCase, replay_fn: Callable) -> dict:
    return asdict(replay_fn(**case.build()))


# ---------------------------------------------------------------------------
# Open-loop load points
# ---------------------------------------------------------------------------


def _self_biased_pattern(src: int, n: int, rng: random.Random) -> int:
    """Node 0 always draws itself (the degenerate resample path); every
    other node targets node 0."""
    return 0


def openloop_cases() -> Tuple[OpenLoopCase, ...]:
    from repro.sweeps.patterns import resolve_pattern
    from repro.topology import mesh, torus

    short = {"warmup_cycles": 200, "measure_cycles": 800, "drain_cycles": 800}

    def case(name, topo_fn, spec, rate, lane=FAST, **extra):
        def build() -> dict:
            topology = topo_fn()
            pattern = (
                _self_biased_pattern
                if spec == "self-biased"
                else resolve_pattern(spec, topology=topology)
            )
            kwargs = {"topology": topology, "injection_rate": rate,
                      "pattern": pattern, "seed": 1, **short, **extra}
            return kwargs

        return OpenLoopCase(name, build, lane=lane)

    def faulted_mesh() -> dict:
        from repro.faults import FaultScenario, LinkFault
        from repro.faults.state import FaultState
        from repro.topology import mesh as mesh_fn

        topology = mesh_fn(4, 4)
        links = [link.link_id for link in topology.network.links][:4]
        scenario = FaultScenario.of(
            *[LinkFault(link_id, start=400, end=700) for link_id in links],
            name="openloop-window",
        )
        return {
            "topology": topology,
            "injection_rate": 0.10,
            "seed": 1,
            "fault_state": FaultState(topology.network, scenario),
            **short,
        }

    return (
        case("mesh4x4-uniform-0.10", lambda: mesh(4, 4), "uniform", 0.10),
        case("mesh4x4-tornado-0.30", lambda: mesh(4, 4), "tornado", 0.30),
        case("torus4x2-uniform-0.15", lambda: torus(4, 2), "uniform", 0.15),
        case("mesh4x4-hotspot-0.12", lambda: mesh(4, 4), "hotspot:0:0.7", 0.12,
             lane=SLOW),
        case("mesh4x4-adversarial-0.20", lambda: mesh(4, 4), "adversarial",
             0.20, lane=SLOW),
        case("mesh4x4-self-biased-0.20", lambda: mesh(4, 4), "self-biased",
             0.20),
        OpenLoopCase("mesh4x4-uniform-0.10-faulted", faulted_mesh, lane=FAST),
    )


def run_openloop_case(case: OpenLoopCase, open_loop_fn: Callable) -> dict:
    return loadpoint_to_dict(open_loop_fn(**case.build()))


# ---------------------------------------------------------------------------
# Corpus assembly
# ---------------------------------------------------------------------------

GOLDEN_FILES = ("traces.json", "replays.json", "openloop.json")


def build_corpus(
    simulate_fn: Callable,
    replay_fn: Callable,
    open_loop_fn: Callable,
    lanes: Tuple[str, ...] = (FAST, SLOW),
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Dict[str, dict]]:
    """Run every corpus case through the given callables."""

    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    traces = {}
    for case in TRACE_CASES:
        if case.lane in lanes:
            note(f"trace {case.name}")
            traces[case.name] = run_trace_case(case, simulate_fn)
    replays = {}
    for rcase in verify_corpus_cases():
        if rcase.lane in lanes:
            note(f"replay {rcase.name}")
            replays[rcase.name] = run_replay_case(rcase, replay_fn)
    points = {}
    for ocase in openloop_cases():
        if ocase.lane in lanes:
            note(f"openloop {ocase.name}")
            points[ocase.name] = run_openloop_case(ocase, open_loop_fn)
    return {"traces.json": traces, "replays.json": replays,
            "openloop.json": points}
