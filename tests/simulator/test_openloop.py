"""Tests for open-loop synthetic traffic evaluation."""

import itertools
import random

import pytest

from repro.errors import SimulationError
from repro.simulator.openloop import (
    LoadPoint,
    hotspot_pattern,
    latency_throughput_curve,
    neighbor_pattern,
    run_open_loop,
    saturation_throughput,
    transpose_pattern,
    uniform_random,
)
from repro.topology import crossbar, mesh


class TestPatterns:
    def test_uniform_never_self(self):
        rng = random.Random(0)
        for _ in range(200):
            src = rng.randrange(8)
            assert uniform_random(src, 8, rng) != src

    def test_uniform_covers_all_destinations(self):
        rng = random.Random(1)
        seen = {uniform_random(0, 8, rng) for _ in range(500)}
        assert seen == set(range(1, 8))

    def test_transpose_on_square(self):
        rng = random.Random(0)
        assert transpose_pattern(1, 16, rng) == 4
        assert transpose_pattern(7, 16, rng) == 13

    def test_transpose_diagonal_resamples(self):
        rng = random.Random(0)
        assert transpose_pattern(5, 16, rng) != 5

    def test_neighbor(self):
        rng = random.Random(0)
        assert neighbor_pattern(7, 8, rng) == 0

    def test_hotspot_bias(self):
        rng = random.Random(0)
        pattern = hotspot_pattern(hotspot=3, bias=1.0)
        assert all(pattern(s, 8, rng) == 3 for s in range(8) if s != 3)


class TestRunOpenLoop:
    def test_low_load_has_low_latency(self):
        point = run_open_loop(
            crossbar(8), 0.05, warmup_cycles=200, measure_cycles=800
        )
        assert point.delivered > 0
        assert not point.saturated
        assert point.avg_latency < 100

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(SimulationError):
            run_open_loop(crossbar(4), 0.0)

    def test_latency_grows_with_load(self):
        low = run_open_loop(mesh(4, 4), 0.1, measure_cycles=1000)
        high = run_open_loop(mesh(4, 4), 0.8, measure_cycles=1000)
        assert high.avg_latency > low.avg_latency

    def test_accepted_tracks_offered_below_saturation(self):
        point = run_open_loop(mesh(4, 4), 0.2, measure_cycles=1500)
        assert point.accepted_flits_per_node_cycle == pytest.approx(
            0.2, rel=0.35
        )

    def test_deterministic_by_seed(self):
        a = run_open_loop(mesh(2, 2), 0.2, seed=5, measure_cycles=600)
        b = run_open_loop(mesh(2, 2), 0.2, seed=5, measure_cycles=600)
        assert a == b


def _half_self_pattern():
    """Returns the source on every other draw, uniform otherwise."""
    calls = itertools.count()

    def pattern(src: int, n: int, rng: random.Random) -> int:
        if next(calls) % 2 == 0:
            return src
        return uniform_random(src, n, rng)

    return pattern


class TestSelfDrawRegression:
    def test_self_draws_do_not_lose_offered_load(self):
        """Regression: a pattern that sometimes returns the source must
        be resampled, not have its packet's worth of flit debt dropped.
        Pre-fix, the half-self pattern delivered ~half the uniform
        pattern's packets at the same offered load."""
        kwargs = dict(measure_cycles=1500, warmup_cycles=300, seed=3)
        base = run_open_loop(crossbar(8), 0.2, pattern=uniform_random, **kwargs)
        point = run_open_loop(
            crossbar(8), 0.2, pattern=_half_self_pattern(), **kwargs
        )
        assert point.delivered >= 0.9 * base.delivered
        assert point.accepted_flits_per_node_cycle == pytest.approx(
            base.accepted_flits_per_node_cycle, rel=0.1
        )

    def test_all_self_pattern_keeps_debt_and_terminates(self):
        """A degenerate pattern that only ever returns the source must
        neither spin forever (resampling is bounded) nor inject."""
        point = run_open_loop(
            crossbar(4),
            0.5,
            pattern=lambda src, n, rng: src,
            warmup_cycles=100,
            measure_cycles=400,
        )
        assert point.delivered == 0
        assert not point.saturated

    def test_self_draw_resampling_stays_deterministic(self):
        kwargs = dict(measure_cycles=600, seed=5)
        a = run_open_loop(mesh(2, 2), 0.2, pattern=_half_self_pattern(), **kwargs)
        b = run_open_loop(mesh(2, 2), 0.2, pattern=_half_self_pattern(), **kwargs)
        assert a == b


class TestFaultKillObserverOrdering:
    def test_exactly_once_delivery_in_nondecreasing_cycle_order(self, monkeypatch):
        """A transient link fault mid-window kills an in-flight packet;
        its retransmission must reach the delivery observer exactly once
        per (src, dst, seq), and observed cycles never run backwards."""
        from repro.faults import FaultScenario, FaultState, LinkFault
        from repro.simulator.config import SimConfig
        from repro.simulator.engine import Engine

        records = []
        real_set = Engine.set_delivery_handler

        def spying_set(self, handler):
            def spy(src, dst, seq, cycle):
                records.append((src, dst, seq, cycle))
                handler(src, dst, seq, cycle)

            real_set(self, spy)

        monkeypatch.setattr(Engine, "set_delivery_handler", spying_set)
        top = mesh(2, 1)
        point = run_open_loop(
            top,
            0.3,
            pattern=neighbor_pattern,
            warmup_cycles=100,
            measure_cycles=500,
            drain_cycles=3000,
            config=SimConfig(deadlock_threshold=80, max_cycles=2_000_000),
            fault_state=FaultState(
                top.network, FaultScenario.of(LinkFault(0, start=250, end=420))
            ),
        )
        assert records, "no deliveries observed"
        keys = [(src, dst, seq) for src, dst, seq, _ in records]
        assert len(keys) == len(set(keys)), "a packet was delivered twice"
        cycles = [cycle for *_, cycle in records]
        assert cycles == sorted(cycles)
        assert point.delivered > 0
        assert not point.saturated


class TestCurve:
    def test_curve_is_ordered_and_stops_on_saturation(self):
        points = latency_throughput_curve(
            mesh(2, 2), [0.05, 0.2], measure_cycles=600
        )
        assert [p.offered_flits_per_node_cycle for p in points] == [0.05, 0.2]

    def test_saturation_throughput(self):
        points = [
            LoadPoint(0.1, 0.1, 10, 100, False),
            LoadPoint(0.5, 0.42, 300, 400, True),
        ]
        assert saturation_throughput(points) == 0.42
        assert saturation_throughput([]) == 0.0

    def test_crossbar_latency_flat_under_load(self):
        """The non-blocking crossbar's latency barely moves with load
        (only endpoint serialization)."""
        points = latency_throughput_curve(
            crossbar(8), [0.05, 0.4], measure_cycles=800
        )
        assert points[-1].avg_latency < 3 * points[0].avg_latency

    def test_single_rate_curve(self):
        points = latency_throughput_curve(mesh(2, 2), [0.1], measure_cycles=600)
        assert len(points) == 1
        assert points[0].offered_flits_per_node_cycle == 0.1

    def test_empty_rate_list(self):
        assert latency_throughput_curve(mesh(2, 2), []) == []

    def test_monotone_curve_peak_is_last_point(self):
        """A curve that never saturates reports its highest accepted
        rate, which on a monotone curve is the last point's."""
        points = [
            LoadPoint(0.1, 0.09, 10, 100, False),
            LoadPoint(0.3, 0.28, 12, 300, False),
            LoadPoint(0.5, 0.47, 15, 500, False),
        ]
        assert saturation_throughput(points) == 0.47

    def test_non_monotone_noise_peak_is_max_not_last(self):
        """Post-saturation accepted throughput can droop; the peak must
        be the maximum over the curve, not the final point."""
        points = [
            LoadPoint(0.2, 0.19, 10, 100, False),
            LoadPoint(0.6, 0.55, 40, 300, False),
            LoadPoint(1.0, 0.48, 600, 280, True),
        ]
        assert saturation_throughput(points) == 0.55

    def test_curve_stops_early_once_saturated(self):
        """The saturating middle rate must be the last point measured."""
        points = latency_throughput_curve(
            mesh(2, 1),
            [0.05, 2.0, 0.1],
            warmup_cycles=100,
            measure_cycles=400,
            drain_cycles=200,
        )
        assert points[-1].saturated
        assert len(points) == 2


class TestRegistryReExport:
    def test_openloop_patterns_is_the_sweeps_registry(self):
        """``openloop.PATTERNS`` must be the same object as the sweeps
        registry view so registrations are visible through both."""
        from repro.simulator import openloop
        from repro.sweeps import patterns as sweeps_patterns

        assert openloop.PATTERNS is sweeps_patterns.PATTERNS
        assert openloop.resolve_pattern is sweeps_patterns.resolve_pattern

    def test_patterns_dict_has_canonical_suite(self):
        from repro.simulator.openloop import PATTERNS

        for name in (
            "uniform", "neighbor", "tornado", "transpose", "hotspot",
            "bit_complement", "bit_reverse", "bit_rotation", "shuffle",
        ):
            assert name in PATTERNS
