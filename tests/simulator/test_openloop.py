"""Tests for open-loop synthetic traffic evaluation."""

import random

import pytest

from repro.errors import SimulationError
from repro.simulator.openloop import (
    LoadPoint,
    hotspot_pattern,
    latency_throughput_curve,
    neighbor_pattern,
    run_open_loop,
    saturation_throughput,
    transpose_pattern,
    uniform_random,
)
from repro.topology import crossbar, mesh


class TestPatterns:
    def test_uniform_never_self(self):
        rng = random.Random(0)
        for _ in range(200):
            src = rng.randrange(8)
            assert uniform_random(src, 8, rng) != src

    def test_uniform_covers_all_destinations(self):
        rng = random.Random(1)
        seen = {uniform_random(0, 8, rng) for _ in range(500)}
        assert seen == set(range(1, 8))

    def test_transpose_on_square(self):
        rng = random.Random(0)
        assert transpose_pattern(1, 16, rng) == 4
        assert transpose_pattern(7, 16, rng) == 13

    def test_transpose_diagonal_resamples(self):
        rng = random.Random(0)
        assert transpose_pattern(5, 16, rng) != 5

    def test_neighbor(self):
        rng = random.Random(0)
        assert neighbor_pattern(7, 8, rng) == 0

    def test_hotspot_bias(self):
        rng = random.Random(0)
        pattern = hotspot_pattern(hotspot=3, bias=1.0)
        assert all(pattern(s, 8, rng) == 3 for s in range(8) if s != 3)


class TestRunOpenLoop:
    def test_low_load_has_low_latency(self):
        point = run_open_loop(
            crossbar(8), 0.05, warmup_cycles=200, measure_cycles=800
        )
        assert point.delivered > 0
        assert not point.saturated
        assert point.avg_latency < 100

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(SimulationError):
            run_open_loop(crossbar(4), 0.0)

    def test_latency_grows_with_load(self):
        low = run_open_loop(mesh(4, 4), 0.1, measure_cycles=1000)
        high = run_open_loop(mesh(4, 4), 0.8, measure_cycles=1000)
        assert high.avg_latency > low.avg_latency

    def test_accepted_tracks_offered_below_saturation(self):
        point = run_open_loop(mesh(4, 4), 0.2, measure_cycles=1500)
        assert point.accepted_flits_per_node_cycle == pytest.approx(
            0.2, rel=0.35
        )

    def test_deterministic_by_seed(self):
        a = run_open_loop(mesh(2, 2), 0.2, seed=5, measure_cycles=600)
        b = run_open_loop(mesh(2, 2), 0.2, seed=5, measure_cycles=600)
        assert a == b


class TestCurve:
    def test_curve_is_ordered_and_stops_on_saturation(self):
        points = latency_throughput_curve(
            mesh(2, 2), [0.05, 0.2], measure_cycles=600
        )
        assert [p.offered_flits_per_node_cycle for p in points] == [0.05, 0.2]

    def test_saturation_throughput(self):
        points = [
            LoadPoint(0.1, 0.1, 10, 100, False),
            LoadPoint(0.5, 0.42, 300, 400, True),
        ]
        assert saturation_throughput(points) == 0.42
        assert saturation_throughput([]) == 0.0

    def test_crossbar_latency_flat_under_load(self):
        """The non-blocking crossbar's latency barely moves with load
        (only endpoint serialization)."""
        points = latency_throughput_curve(
            crossbar(8), [0.05, 0.4], measure_cycles=800
        )
        assert points[-1].avg_latency < 3 * points[0].avg_latency
