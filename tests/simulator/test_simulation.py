"""Behavioural tests of the flit-level simulator."""

import pytest

from repro.errors import SimulationError
from repro.simulator import SimConfig, simulate
from repro.topology import crossbar, mesh, mesh_for, torus
from repro.workloads import PhaseProgramBuilder


def _cfg(**kw):
    base = dict(deadlock_threshold=500, max_cycles=2_000_000)
    base.update(kw)
    return SimConfig(**base)


def _single_message_program(size=64):
    b = PhaseProgramBuilder(4, "one")
    b.phase([(0, 3, size)])
    return b.build()


class TestBasics:
    def test_single_message_delivers(self):
        r = simulate(_single_message_program(), crossbar(4), _cfg())
        assert r.delivered_packets == 1
        assert r.deadlocks_detected == 0

    def test_execution_time_accounts_for_serialization(self):
        """A bigger message must take proportionally longer to stream."""
        small = simulate(_single_message_program(64), crossbar(4), _cfg())
        big = simulate(_single_message_program(640), crossbar(4), _cfg())
        extra_flits = big.config.flits_for(640) - big.config.flits_for(64)
        assert big.execution_cycles >= small.execution_cycles + extra_flits

    def test_overheads_accrue_in_comm_time(self):
        cfg = _cfg(send_overhead=10, recv_overhead=10)
        r = simulate(_single_message_program(), crossbar(4), cfg)
        # Sender pays 10, receiver pays 10 + waiting.
        assert r.comm_cycles_per_process[0] == 10
        assert r.comm_cycles_per_process[3] >= 10

    def test_compute_only_program(self):
        b = PhaseProgramBuilder(2, "quiet")
        b.compute(5000)
        r = simulate(b.build(), crossbar(2), _cfg())
        assert r.execution_cycles == 5000
        assert r.delivered_packets == 0

    def test_process_count_mismatch_rejected(self):
        b = PhaseProgramBuilder(4, "x")
        b.phase([(0, 1, 64)])
        with pytest.raises(SimulationError):
            simulate(b.build(), crossbar(8), _cfg())

    def test_unmatched_recv_detected(self):
        from repro.workloads.events import Program, RecvEvent

        program = Program(
            name="stuck", num_processes=2, events=((), (RecvEvent(source=0),))
        )
        with pytest.raises(SimulationError, match="waits for message"):
            simulate(program, crossbar(2), _cfg())


class TestOrderingAndMatching:
    def test_fifo_matching_same_pair(self):
        # Two messages 0->1 of different sizes; receives match in order.
        b = PhaseProgramBuilder(2, "fifo")
        b.phase([(0, 1, 64)], tag="first")
        b.phase([(0, 1, 256)], tag="second")
        r = simulate(b.build(), crossbar(2), _cfg())
        assert r.delivered_packets == 2

    def test_exchange_completes(self):
        b = PhaseProgramBuilder(2, "exch")
        b.phase([(0, 1, 128), (1, 0, 128)])
        r = simulate(b.build(), crossbar(2), _cfg())
        assert r.delivered_packets == 2

    def test_many_phases_all_deliver(self):
        b = PhaseProgramBuilder(4, "multi")
        for i in range(10):
            b.compute(50)
            b.phase([(0, 1, 64), (1, 2, 64), (2, 3, 64), (3, 0, 64)])
        r = simulate(b.build(), crossbar(4), _cfg())
        assert r.delivered_packets == 40


class TestContentionEffects:
    def test_shared_link_slower_than_disjoint(self):
        """Two messages forced over one mesh link take longer than the
        same two messages on disjoint paths."""
        line = mesh(4, 1)
        b1 = PhaseProgramBuilder(4, "conflict")
        b1.phase([(0, 3, 512), (1, 2, 512)])  # share link S1->S2
        conflicted = simulate(b1.build(), line, _cfg())

        b2 = PhaseProgramBuilder(4, "disjoint")
        b2.phase([(0, 1, 512), (3, 2, 512)])  # disjoint links
        clean = simulate(b2.build(), line, _cfg())
        assert conflicted.execution_cycles > clean.execution_cycles

    def test_crossbar_beats_mesh_under_contention(self):
        b = PhaseProgramBuilder(4, "load")
        for _ in range(3):
            b.phase([(0, 3, 512), (1, 2, 512)])
            b.phase([(3, 0, 512), (2, 1, 512)])
        cfg = _cfg()
        xbar = simulate(b.build(), crossbar(4), cfg)
        line = simulate(b.build(), mesh(4, 1), cfg)
        assert xbar.execution_cycles <= line.execution_cycles

    def test_link_utilization_reported(self):
        r = simulate(_single_message_program(), mesh(2, 2), _cfg())
        assert r.link_utilization
        assert all(0.0 <= u <= 1.0 for u in r.link_utilization.values())

    def test_trailing_send_utilization_bounded(self):
        """A send with no matching receive leaves the network draining
        after every process has finished; channel busy cycles accrued
        during that drain must be normalized over the cycles actually
        simulated, not the (shorter) execution time — the busy fraction
        can never exceed 1.0."""
        from repro.workloads.events import Program, SendEvent

        program = Program(
            name="trail",
            num_processes=2,
            events=((SendEvent(dest=1, size_bytes=512),), ()),
        )
        r = simulate(program, crossbar(2), _cfg())
        assert r.delivered_packets == 1
        # Execution ends at the sender's overhead; streaming ~129 flits
        # takes far longer, so the old execution-cycle normalization
        # reported utilizations well above 1.0 here.
        assert r.execution_cycles < r.config.flits_for(512)
        assert r.link_utilization
        assert all(0.0 <= u <= 1.0 for u in r.link_utilization.values())
        assert max(r.link_utilization.values()) > 0.0


class TestTorusAdaptive:
    def test_torus_wrap_messages_deliver(self):
        b = PhaseProgramBuilder(16, "wrap")
        b.phase([(0, 3, 256), (3, 0, 256), (12, 15, 256), (15, 12, 256)])
        r = simulate(b.build(), torus(4, 4), _cfg())
        assert r.delivered_packets == 4

    def test_adaptive_full_permutation(self):
        b = PhaseProgramBuilder(16, "perm")
        b.phase([(i, (i + 5) % 16, 256) for i in range(16)])
        r = simulate(b.build(), torus(4, 4), _cfg())
        assert r.delivered_packets == 16

    def test_mesh_full_permutation(self):
        b = PhaseProgramBuilder(16, "perm")
        b.phase([(i, (i + 5) % 16, 256) for i in range(16)])
        r = simulate(b.build(), mesh_for(16), _cfg())
        assert r.delivered_packets == 16


class TestLinkDelays:
    def test_longer_links_slow_delivery(self):
        top1 = mesh(2, 1)
        fast = simulate(_two_node_program(), top1, _cfg())
        top2 = mesh(2, 1)
        link_id = top2.network.links[0].link_id
        slow = simulate(
            _two_node_program(), top2, _cfg(), link_delays={link_id: 8}
        )
        assert slow.execution_cycles > fast.execution_cycles


def _two_node_program():
    b = PhaseProgramBuilder(2, "two")
    b.phase([(0, 1, 256)])
    return b.build()


class TestDeadlockRecovery:
    def test_recovery_preserves_delivery(self):
        """Even with a tiny deadlock threshold (spurious detections),
        every message is eventually delivered via retransmission."""
        b = PhaseProgramBuilder(16, "stress")
        for k in (1, 5, 7):
            b.phase([(i, (i + k) % 16, 256) for i in range(16)])
        cfg = _cfg(deadlock_threshold=60, max_cycles=5_000_000)
        r = simulate(b.build(), torus(4, 4), cfg)
        # A killed packet never delivers; its retransmission does, so
        # each logical message is delivered exactly once.
        assert r.delivered_packets == 48

    def test_no_deadlocks_on_paper_workload(self):
        """The paper observed zero deadlocks across all runs; CG on the
        torus with the paper threshold reproduces that."""
        from repro.workloads import cg

        b = cg(16, iterations=1)
        r = simulate(b.program, torus(4, 4), SimConfig())
        assert r.deadlocks_detected == 0
        assert r.delivered_packets == b.program.total_messages
