"""Property tests for the simulator's global event queue.

The engine's byte-identity guarantee rests on three invariants of
:class:`repro.simulator.events.EventQueue` (see docs/SIMULATOR.md):
pops never go backwards in time, same-time events pop in insertion
order (one global sequence counter, so source ordering is fixed at
push time), and a cancelled event never fires.  Hypothesis drives
random push/pop/cancel interleavings at them.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.events import CREDIT, FLIT, NIC_WAKE, EventQueue

times = st.integers(min_value=0, max_value=50)
kinds = st.sampled_from([FLIT, CREDIT, NIC_WAKE])


class TestBasics:
    def test_kinds_are_distinct(self):
        assert len({FLIT, CREDIT, NIC_WAKE}) == 3

    def test_empty_queue(self):
        q = EventQueue()
        assert not q
        assert len(q) == 0
        assert q.peek_time() is None
        assert q.pop() is None

    def test_push_returns_monotonic_seqs(self):
        q = EventQueue()
        seqs = [q.push(5, FLIT, None), q.push(3, CREDIT, None), q.push(9, NIC_WAKE, 0)]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 3
        assert len(q) == 3 and q

    def test_pop_returns_full_event(self):
        q = EventQueue()
        seq = q.push(7, CREDIT, ("cid", 1))
        assert q.peek_time() == 7
        assert q.pop() == (7, seq, CREDIT, ("cid", 1))
        assert q.pop() is None

    def test_cancelled_head_is_skipped(self):
        q = EventQueue()
        first = q.push(1, FLIT, "a")
        q.push(2, FLIT, "b")
        q.cancel(first)
        assert len(q) == 1
        assert q.peek_time() == 2
        assert q.pop()[3] == "b"
        assert not q

    def test_cancel_all_empties_queue(self):
        q = EventQueue()
        seqs = [q.push(t, FLIT, t) for t in (3, 1, 2)]
        for seq in seqs:
            q.cancel(seq)
        assert not q
        assert len(q) == 0
        assert q.peek_time() is None
        assert q.pop() is None


class TestProperties:
    @settings(max_examples=200, deadline=None)
    @given(events=st.lists(st.tuples(times, kinds), max_size=64))
    def test_pop_times_nondecreasing(self, events):
        q = EventQueue()
        for time, kind in events:
            q.push(time, kind, None)
        popped = []
        while q:
            popped.append(q.pop()[0])
        assert popped == sorted(popped)
        assert len(popped) == len(events)

    @settings(max_examples=200, deadline=None)
    @given(events=st.lists(st.tuples(times, kinds), max_size=64))
    def test_same_time_ties_pop_in_insertion_order(self, events):
        """The full pop order is exactly sorted-by-(time, push index):
        the global sequence counter makes tie order deterministic and
        independent of event kind."""
        q = EventQueue()
        for time, kind in events:
            q.push(time, kind, None)
        expected = sorted(
            ((time, idx) for idx, (time, _) in enumerate(events)),
        )
        popped = []
        while q:
            time, seq, _, _ = q.pop()
            popped.append((time, seq))
        assert popped == expected

    @settings(max_examples=200, deadline=None)
    @given(
        events=st.lists(st.tuples(times, kinds), min_size=1, max_size=64),
        cancel_mask=st.lists(st.booleans(), min_size=64, max_size=64),
    )
    def test_cancelled_events_never_fire(self, events, cancel_mask):
        q = EventQueue()
        seqs = [q.push(time, kind, idx) for idx, (time, kind) in enumerate(events)]
        cancelled = {
            seq for seq, flag in zip(seqs, cancel_mask) if flag
        }
        for seq in cancelled:
            q.cancel(seq)
        assert len(q) == len(events) - len(cancelled)
        survivors = []
        while q:
            survivors.append(q.pop()[1])
        assert set(survivors).isdisjoint(cancelled)
        assert set(survivors) == set(seqs) - cancelled

    @settings(max_examples=200, deadline=None)
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("push"), times),
                st.tuples(st.just("pop"), st.just(0)),
                st.tuples(st.just("cancel"), st.integers(0, 63)),
            ),
            max_size=80,
        )
    )
    def test_interleaved_ops_match_reference_model(self, ops):
        """Under any interleaving of push/pop/cancel, the queue agrees
        with a naive dict-of-pending reference model."""
        q = EventQueue()
        pending = {}  # seq -> time
        for op, arg in ops:
            if op == "push":
                seq = q.push(arg, FLIT, None)
                pending[seq] = arg
            elif op == "pop":
                event = q.pop()
                if pending:
                    expected = min(pending.items(), key=lambda kv: (kv[1], kv[0]))
                    assert event is not None
                    assert (event[1], event[0]) == (expected[0], expected[1])
                    del pending[expected[0]]
                else:
                    assert event is None
            else:  # cancel the arg-th pending event, if any
                live = sorted(pending)
                if live:
                    seq = live[arg % len(live)]
                    q.cancel(seq)
                    del pending[seq]
            assert len(q) == len(pending)
            expected_peek = min(pending.values()) if pending else None
            assert q.peek_time() == expected_peek
