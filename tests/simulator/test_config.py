"""Tests for simulation configuration."""

import pytest

from repro.errors import SimulationError
from repro.simulator import PAPER_CONFIG, SimConfig


class TestSimConfig:
    def test_paper_defaults(self):
        """Section 4.2: 32-bit flits at 800 MHz, 3 VCs, 10-cycle
        overheads."""
        assert PAPER_CONFIG.flit_bytes == 4
        assert PAPER_CONFIG.clock_mhz == 800.0
        assert PAPER_CONFIG.num_vcs == 3
        assert PAPER_CONFIG.send_overhead == 10
        assert PAPER_CONFIG.recv_overhead == 10

    def test_flits_for_includes_header(self):
        cfg = SimConfig(flit_bytes=4)
        assert cfg.flits_for(0) == 1  # header only
        assert cfg.flits_for(1) == 2
        assert cfg.flits_for(4) == 2
        assert cfg.flits_for(5) == 3
        assert cfg.flits_for(1024) == 257

    def test_flits_for_rejects_negative(self):
        with pytest.raises(SimulationError):
            SimConfig().flits_for(-1)

    def test_cycles_to_us(self):
        assert SimConfig(clock_mhz=800.0).cycles_to_us(800) == pytest.approx(1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"flit_bytes": 0},
            {"num_vcs": 0},
            {"vc_buffer_flits": 0},
            {"send_overhead": -1},
            {"deadlock_threshold": 0},
            {"max_cycles": 0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            SimConfig(**kwargs)
