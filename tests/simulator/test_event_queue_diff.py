"""Byte-identity differential harness for the event-queue engine.

The committed goldens under ``tests/simulator/golden/`` are the sole
oracle: bench traces, fault campaigns, the 30-certificate verify
corpus, and open-loop load points, frozen from the pristine
pre-event-queue engine and compared as canonical JSON.  They catch
regressions anywhere in the stack — engine scheduling, fabric, packet
bookkeeping, serialization — because every payload field participates
in the comparison.

The vendored ``legacy_engine`` cross-checks and their hypothesis lanes
were retired once the nightly differential job had soaked; regenerate
the goldens with ``scripts/gen_simulator_golden.py`` when a payload
*shape* change lands (and diff the unchanged fields against the
previous fixtures).  Slow-lane cases carry ``@pytest.mark.slow`` and
run nightly.
"""

import json
from pathlib import Path

import pytest

from repro.simulator import simulate
from repro.simulator.openloop import run_open_loop
from repro.verify.dynamic import replay_pattern
from tests.simulator import diff_corpus

GOLDEN_DIR = Path(__file__).parent / "golden"


def _golden(filename: str) -> dict:
    return json.loads((GOLDEN_DIR / filename).read_text())


def _canon(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def _params(cases):
    return [
        pytest.param(
            case,
            id=case.name,
            marks=[pytest.mark.slow] if case.lane == diff_corpus.SLOW else [],
        )
        for case in cases
    ]


class TestGoldenIdentity:
    """Current engine vs the committed pre-rewrite goldens."""

    @pytest.mark.parametrize("case", _params(diff_corpus.TRACE_CASES))
    def test_trace_case_matches_golden(self, case):
        payload = diff_corpus.run_trace_case(case, simulate)
        assert _canon(payload) == _canon(_golden("traces.json")[case.name])

    @pytest.mark.parametrize("case", _params(diff_corpus.verify_corpus_cases()))
    def test_verify_corpus_replay_matches_golden(self, case):
        payload = diff_corpus.run_replay_case(case, replay_pattern)
        assert _canon(payload) == _canon(_golden("replays.json")[case.name])

    @pytest.mark.parametrize("case", _params(diff_corpus.openloop_cases()))
    def test_openloop_point_matches_golden(self, case):
        payload = diff_corpus.run_openloop_case(case, run_open_loop)
        assert _canon(payload) == _canon(_golden("openloop.json")[case.name])


class TestGoldenCoverage:
    """The fixture files must stay in lockstep with the corpus — a
    case added to ``diff_corpus`` without regenerating the goldens
    would otherwise silently skip comparison (KeyError says why)."""

    def test_every_corpus_case_has_a_golden(self):
        traces = _golden("traces.json")
        assert {c.name for c in diff_corpus.TRACE_CASES} == set(traces)
        replays = _golden("replays.json")
        assert {c.name for c in diff_corpus.verify_corpus_cases()} == set(replays)
        openloop = _golden("openloop.json")
        assert {c.name for c in diff_corpus.openloop_cases()} == set(openloop)

    def test_openloop_goldens_carry_percentiles(self):
        """Schema canary: every open-loop golden payload must have the
        p50/p95/p99 fields added with CACHE_SCHEMA 3."""
        for name, payload in _golden("openloop.json").items():
            for field in ("p50_latency", "p95_latency", "p99_latency"):
                assert field in payload, (name, field)
