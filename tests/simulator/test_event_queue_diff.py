"""Byte-identity differential harness for the event-queue engine.

Two oracles hold the rewritten core to the pre-event-queue semantics:

* the committed goldens under ``tests/simulator/golden/`` (frozen from
  the pristine engine before the rewrite landed) — bench traces, fault
  campaigns, the 30-certificate verify corpus, and open-loop load
  points, each compared as canonical JSON;
* the vendored :mod:`repro.simulator.legacy_engine`, replayed against
  the current engine on hypothesis-generated random programs, fault
  scenarios, and open-loop points that no fixture can enumerate.

The goldens catch regressions anywhere in the stack (the legacy engine
shares the rewritten fabric/packet modules); the legacy diff catches
engine-logic divergence on inputs outside the fixture set.  Slow-lane
cases carry ``@pytest.mark.slow`` and run nightly.
"""

import json
import os
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.eval.serialize import loadpoint_to_dict, result_to_dict
from repro.obs import enabled_observability
from repro.simulator import SimConfig, simulate
from repro.simulator.legacy_engine import (
    legacy_replay_pattern,
    legacy_run_open_loop,
    legacy_simulate,
)
from repro.simulator.openloop import run_open_loop, uniform_random
from repro.topology import crossbar, mesh, mesh_for, torus_for
from repro.verify.dynamic import replay_pattern
from repro.workloads import PhaseProgramBuilder
from tests.simulator import diff_corpus

GOLDEN_DIR = Path(__file__).parent / "golden"

# Hypothesis budget multiplier: the CI fast lane runs with the default
# (1), the nightly differential sweep sets DIFF_HYPOTHESIS_SCALE=5 for
# long randomized runs against the legacy oracle.
_SCALE = max(1, int(os.environ.get("DIFF_HYPOTHESIS_SCALE", "1")))


def _golden(filename: str) -> dict:
    return json.loads((GOLDEN_DIR / filename).read_text())


def _canon(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def _params(cases):
    return [
        pytest.param(
            case,
            id=case.name,
            marks=[pytest.mark.slow] if case.lane == diff_corpus.SLOW else [],
        )
        for case in cases
    ]


class TestGoldenIdentity:
    """Current engine vs the committed pre-rewrite goldens."""

    @pytest.mark.parametrize("case", _params(diff_corpus.TRACE_CASES))
    def test_trace_case_matches_golden(self, case):
        payload = diff_corpus.run_trace_case(case, simulate)
        assert _canon(payload) == _canon(_golden("traces.json")[case.name])

    @pytest.mark.parametrize("case", _params(diff_corpus.verify_corpus_cases()))
    def test_verify_corpus_replay_matches_golden(self, case):
        payload = diff_corpus.run_replay_case(case, replay_pattern)
        assert _canon(payload) == _canon(_golden("replays.json")[case.name])

    @pytest.mark.parametrize("case", _params(diff_corpus.openloop_cases()))
    def test_openloop_point_matches_golden(self, case):
        payload = diff_corpus.run_openloop_case(case, run_open_loop)
        assert _canon(payload) == _canon(_golden("openloop.json")[case.name])


class TestLegacyEngineAgainstGoldens:
    """The vendored legacy engine must itself reproduce the goldens —
    otherwise a fabric-layer change has shifted semantics under both
    engines and the differential harness would be comparing two wrong
    answers."""

    @pytest.mark.parametrize(
        "case",
        _params([c for c in diff_corpus.TRACE_CASES if c.lane == diff_corpus.FAST]),
    )
    def test_legacy_trace_case_matches_golden(self, case):
        payload = diff_corpus.run_trace_case(case, legacy_simulate)
        assert _canon(payload) == _canon(_golden("traces.json")[case.name])

    def test_legacy_openloop_degenerate_matches_golden(self):
        case = {c.name: c for c in diff_corpus.openloop_cases()}[
            "mesh4x4-self-biased-0.20"
        ]
        payload = diff_corpus.run_openloop_case(case, legacy_run_open_loop)
        assert _canon(payload) == _canon(_golden("openloop.json")[case.name])

    @pytest.mark.slow
    def test_legacy_small_verify_corpus_matches_golden(self):
        golden = _golden("replays.json")
        for case in diff_corpus.verify_corpus_cases():
            if case.lane != diff_corpus.FAST:
                continue
            payload = diff_corpus.run_replay_case(case, legacy_replay_pattern)
            assert _canon(payload) == _canon(golden[case.name]), case.name


def _random_program(n, shifts, sizes, name="rand"):
    builder = PhaseProgramBuilder(n, name)
    for k, (shift, size) in enumerate(zip(shifts, sizes)):
        builder.compute(15 * (k + 1))
        builder.phase(
            [(i, (i + shift) % n, size) for i in range(n) if (i + shift) % n != i]
        )
    return builder.build()


program_strategy = st.tuples(
    st.sampled_from([4, 6, 8]),
    st.lists(st.integers(min_value=1, max_value=7), min_size=1, max_size=4),
    st.lists(st.integers(min_value=4, max_value=300), min_size=4, max_size=4),
)


class TestLegacyDifferential:
    """Current engine vs the vendored legacy engine on random inputs."""

    def _assert_identical(self, program, topology, config, **kwargs):
        new = simulate(program, topology, config, **kwargs)
        old = legacy_simulate(program, topology, config, **kwargs)
        assert _canon(result_to_dict(new)) == _canon(result_to_dict(old))

    @settings(
        max_examples=12 * _SCALE, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(args=program_strategy)
    def test_random_traces_identical(self, args):
        n, shifts, sizes = args
        shifts = [s % n or 1 for s in shifts]
        program = _random_program(n, shifts, sizes)
        config = SimConfig(max_cycles=3_000_000)
        for topology in (crossbar(n), mesh_for(n), torus_for(n)):
            self._assert_identical(program, topology, config)

    @settings(
        max_examples=8 * _SCALE, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        args=program_strategy,
        threshold=st.integers(min_value=50, max_value=200),
        delay_salt=st.integers(min_value=0, max_value=3),
    )
    def test_random_traces_with_recovery_and_link_delays_identical(
        self, args, threshold, delay_salt
    ):
        """Spuriously low deadlock thresholds force kills and
        retransmissions; non-uniform link delays skew every credit
        round trip.  Both engines must agree cycle-for-cycle anyway."""
        n, shifts, sizes = args
        shifts = [s % n or 1 for s in shifts]
        program = _random_program(n, shifts, sizes)
        topology = mesh_for(n)
        delays = {
            link.link_id: 1 + (link.link_id + delay_salt) % 3
            for link in topology.network.links
        }
        config = SimConfig(max_cycles=3_000_000, deadlock_threshold=threshold)
        self._assert_identical(program, topology, config, link_delays=delays)

    @settings(
        max_examples=6 * _SCALE, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        args=program_strategy,
        start=st.integers(min_value=100, max_value=2000),
        span=st.integers(min_value=50, max_value=800),
    )
    def test_random_fault_campaigns_identical(self, args, start, span):
        from repro.faults import FaultScenario, LinkFault
        from repro.faults.state import FaultState

        n, shifts, sizes = args
        shifts = [s % n or 1 for s in shifts]
        program = _random_program(n, shifts, sizes)
        topology = mesh_for(n)
        links = [link.link_id for link in topology.network.links]
        scenario = FaultScenario.of(
            *[LinkFault(link_id, start=start, end=start + span) for link_id in links],
            name="diff-random",
        )
        fault_state = FaultState(topology.network, scenario)
        config = SimConfig(max_cycles=3_000_000)
        self._assert_identical(program, topology, config, fault_state=fault_state)

    def test_obs_counters_identical(self):
        """Equal obs counters, not just equal results: the sampled
        series depend on the exact visited-cycle set and active-set
        sizes, so this pins the rewrite's scheduling at full depth."""
        program = _random_program(8, [1, 3, 5], [64, 128, 32, 256])
        config = SimConfig(max_cycles=3_000_000)
        for topology in (mesh(4, 2), torus_for(8)):
            obs_new = enabled_observability(sample_every=64)
            obs_old = enabled_observability(sample_every=64)
            new = simulate(program, topology, config, obs=obs_new)
            old = legacy_simulate(program, topology, config, obs=obs_old)
            assert _canon(result_to_dict(new)) == _canon(result_to_dict(old))
            assert _canon(obs_new.metrics.snapshot(include_wall=False)) == _canon(
                obs_old.metrics.snapshot(include_wall=False)
            )

    @settings(
        max_examples=10 * _SCALE, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        rate=st.sampled_from([0.05, 0.1, 0.2, 0.45]),
        seed=st.integers(min_value=0, max_value=5),
        n_side=st.sampled_from([(2, 2), (4, 2), (4, 4)]),
    )
    def test_random_openloop_points_identical(self, rate, seed, n_side):
        kwargs = dict(
            injection_rate=rate,
            pattern=uniform_random,
            warmup_cycles=150,
            measure_cycles=500,
            drain_cycles=500,
            seed=seed,
        )
        topology = mesh(*n_side)
        new = run_open_loop(topology, **kwargs)
        old = legacy_run_open_loop(topology, **kwargs)
        assert _canon(loadpoint_to_dict(new)) == _canon(loadpoint_to_dict(old))
