"""Unit tests for the simulator's routing policies."""

import pytest

from repro.errors import RoutingError
from repro.simulator.packet import Packet
from repro.simulator.routing import AdaptiveMinimal, BoundSourceRouted
from repro.topology import mesh, torus


def _packet(src, dst):
    return Packet(
        packet_id=0,
        source=src,
        dest=dst,
        size_bytes=8,
        num_flits=3,
        seq=0,
        inject_cycle=0,
    )


class TestBoundSourceRouted:
    def test_prepare_attaches_hops_and_ejection(self):
        top = mesh(4, 1)
        routing = BoundSourceRouted(top.routing, top.network)
        pkt = _packet(0, 3)
        routing.prepare(pkt, top.network)
        assert pkt.route_hops[-1] == ("ej", 3)
        assert len(pkt.route_hops) == 4  # 3 links + ejection

    def test_candidates_follow_route_order(self):
        top = mesh(4, 1)
        routing = BoundSourceRouted(top.routing, top.network)
        pkt = _packet(0, 3)
        routing.prepare(pkt, top.network)
        s0 = top.network.switch_of(0)
        first = routing.candidates(pkt, s0)
        assert len(first) == 1
        assert first[0][0] == "link"

    def test_destination_switch_ejects(self):
        top = mesh(4, 1)
        routing = BoundSourceRouted(top.routing, top.network)
        pkt = _packet(0, 3)
        routing.prepare(pkt, top.network)
        assert routing.candidates(pkt, pkt.dest_switch) == [("ej", 3)]

    def test_stranded_packet_raises(self):
        top = mesh(2, 2)
        routing = BoundSourceRouted(top.routing, top.network)
        pkt = _packet(0, 1)
        routing.prepare(pkt, top.network)
        # Switch 2 (processor 2's switch) is not on the 0 -> 1 route.
        off_route = top.network.switch_of(2)
        with pytest.raises(RoutingError):
            routing.candidates(pkt, off_route)

    def test_unprepared_packet_raises(self):
        top = mesh(2, 2)
        routing = BoundSourceRouted(top.routing, top.network)
        with pytest.raises(RoutingError):
            routing.candidates(_packet(0, 1), 0)


class TestAdaptiveMinimal:
    def test_needs_grid_topology(self):
        from repro.topology import crossbar

        with pytest.raises(RoutingError):
            AdaptiveMinimal(crossbar(4))

    def test_single_direction_when_aligned(self):
        top = torus(4, 4)
        routing = AdaptiveMinimal(top)
        pkt = _packet(0, 1)  # (0,0) -> (1,0): one minimal x step
        routing.prepare(pkt, top.network)
        cands = routing.candidates(pkt, top.network.switch_of(0))
        assert len(cands) == 1

    def test_two_directions_on_diagonal(self):
        top = torus(4, 4)
        routing = AdaptiveMinimal(top)
        pkt = _packet(0, 5)  # (0,0) -> (1,1): x or y first
        routing.prepare(pkt, top.network)
        cands = routing.candidates(pkt, top.network.switch_of(0))
        assert len(cands) == 2

    def test_tie_distance_offers_both_ways(self):
        top = torus(4, 4)
        routing = AdaptiveMinimal(top)
        pkt = _packet(0, 2)  # (0,0) -> (2,0): +2 or -2, a wrap tie
        routing.prepare(pkt, top.network)
        cands = routing.candidates(pkt, top.network.switch_of(0))
        assert len(cands) == 2

    def test_wrap_shortcut_is_minimal(self):
        top = torus(4, 4)
        routing = AdaptiveMinimal(top)
        pkt = _packet(0, 3)  # (0,0) -> (3,0): wrap is 1 hop
        routing.prepare(pkt, top.network)
        cands = routing.candidates(pkt, top.network.switch_of(0))
        # The single minimal direction is the wraparound.
        assert len(cands) == 1
        link_id = cands[0][1]
        link = top.network.link(link_id)
        assert {top.coords[link.u][0], top.coords[link.v][0]} == {0, 3}

    def test_destination_ejects(self):
        top = torus(4, 4)
        routing = AdaptiveMinimal(top)
        pkt = _packet(0, 9)
        routing.prepare(pkt, top.network)
        assert routing.candidates(pkt, pkt.dest_switch) == [("ej", 9)]

    def test_mesh_adaptive_has_no_wrap_candidates(self):
        top = mesh(4, 4)
        top.kind = "mesh"
        routing = AdaptiveMinimal(top)
        pkt = _packet(0, 3)
        routing.prepare(pkt, top.network)
        cands = routing.candidates(pkt, top.network.switch_of(0))
        assert len(cands) == 1  # only +x, no wraparound exists
