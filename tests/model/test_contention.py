"""Unit tests for the time-conflict model (Definitions 3 and 4)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.model import (
    Communication,
    CommunicationPattern,
    ContentionEvent,
    Message,
    contention_degree,
    overlap_pairs,
    potential_contention_set,
)


def _msg(s, d, lo, hi):
    return Message(source=s, dest=d, t_start=lo, t_finish=hi)


class TestContentionEvent:
    def test_canonical_order(self):
        a = Communication(5, 6)
        b = Communication(1, 2)
        e = ContentionEvent.of(a, b)
        assert e.first == b
        assert e.second == a

    def test_order_independence(self):
        a = Communication(5, 6)
        b = Communication(1, 2)
        assert ContentionEvent.of(a, b) == ContentionEvent.of(b, a)

    def test_as_4tuple(self):
        e = ContentionEvent.of(Communication(1, 2), Communication(3, 4))
        assert e.as_4tuple == (1, 2, 3, 4)

    def test_involves(self):
        e = ContentionEvent.of(Communication(1, 2), Communication(3, 4))
        assert e.involves(Communication(1, 2))
        assert not e.involves(Communication(2, 1))


class TestOverlapPairs:
    def test_sequential_messages_produce_no_pairs(self):
        p = CommunicationPattern.from_messages(
            [_msg(0, 1, 0, 1), _msg(1, 2, 2, 3), _msg(2, 3, 4, 5)]
        )
        assert list(overlap_pairs(p)) == []

    def test_all_concurrent_messages_pair_up(self):
        p = CommunicationPattern.from_messages(
            [_msg(0, 1, 0, 10), _msg(1, 2, 0, 10), _msg(2, 3, 0, 10)]
        )
        assert len(list(overlap_pairs(p))) == 3  # C(3, 2)

    def test_touching_intervals_pair(self):
        p = CommunicationPattern.from_messages([_msg(0, 1, 0, 1), _msg(1, 2, 1, 2)])
        assert len(list(overlap_pairs(p))) == 1

    def test_chain_of_overlaps_is_not_transitive(self):
        # a overlaps b, b overlaps c, a does not overlap c.
        p = CommunicationPattern.from_messages(
            [_msg(0, 1, 0, 2), _msg(1, 2, 1, 4), _msg(2, 3, 3, 5)]
        )
        pairs = {
            (m1.communication, m2.communication) for m1, m2 in overlap_pairs(p)
        }
        assert (Communication(0, 1), Communication(1, 2)) in pairs
        assert (Communication(1, 2), Communication(2, 3)) in pairs
        assert len(pairs) == 2

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=40),
                st.integers(min_value=0, max_value=10),
            ),
            min_size=0,
            max_size=25,
        )
    )
    def test_sweep_matches_quadratic_reference(self, raw):
        """The sweep-line overlap enumeration must equal brute force."""
        msgs = [
            _msg(s, s + 1, float(lo), float(lo + dur)) for s, lo, dur in raw
        ]
        if not msgs:
            return
        p = CommunicationPattern.from_messages(msgs, num_processes=7)
        swept = {frozenset([id(m1), id(m2)]) for m1, m2 in overlap_pairs(p)}
        brute = {
            frozenset([id(m1), id(m2)])
            for i, m1 in enumerate(msgs)
            for m2 in msgs[i + 1 :]
            if m1.overlaps(m2)
        }
        assert swept == brute


class TestPotentialContentionSet:
    def test_excludes_same_communication_pairs(self):
        # Two messages of the same (s, d) pair carry no routing freedom.
        p = CommunicationPattern.from_messages([_msg(0, 1, 0, 5), _msg(0, 1, 1, 6)])
        assert potential_contention_set(p) == frozenset()

    def test_collects_distinct_pairs(self):
        p = CommunicationPattern.from_messages(
            [_msg(0, 1, 0, 5), _msg(2, 3, 1, 6), _msg(4, 5, 10, 11)]
        )
        c = potential_contention_set(p)
        assert c == {
            ContentionEvent.of(Communication(0, 1), Communication(2, 3))
        }

    def test_repeated_phases_are_compressed(self):
        # The same contention pattern occurring twice yields one event.
        p = CommunicationPattern.from_messages(
            [
                _msg(0, 1, 0, 1), _msg(2, 3, 0, 1),
                _msg(0, 1, 5, 6), _msg(2, 3, 5, 6),
            ]
        )
        assert len(potential_contention_set(p)) == 1

    def test_contention_degree_ranks_complexity(self):
        simple = CommunicationPattern.from_messages(
            [_msg(0, 1, 0, 1), _msg(2, 3, 2, 3)]
        )
        complex_ = CommunicationPattern.from_messages(
            [_msg(0, 1, 0, 1), _msg(2, 3, 0, 1), _msg(1, 2, 0, 1)]
        )
        assert contention_degree(simple) < contention_degree(complex_)
