"""Property-based tests of the contention model against brute force.

The sweep-based overlap relation, the contention-period cliques and the
Theorem 1 certificate all have obvious O(n^2) reference definitions;
hypothesis drives random message sets at both and demands agreement.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import (
    CommunicationPattern,
    ContentionEvent,
    Message,
    check_contention_free,
    potential_contention_set,
)
from repro.model.cliques import contention_periods
from repro.model.conflicts import shared_links
from repro.model.contention import overlap_pairs
from repro.topology import mesh_for

NUM_PROCESSES = 6


def _pattern(raw):
    msgs = [
        Message(source=s, dest=d, t_start=float(lo), t_finish=float(lo + dur))
        for s, d, lo, dur in raw
        if s != d
    ]
    if not msgs:
        return None
    return CommunicationPattern.from_messages(msgs, num_processes=NUM_PROCESSES)


small_messages = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=NUM_PROCESSES - 1),
        st.integers(min_value=0, max_value=NUM_PROCESSES - 1),
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=0, max_value=5),  # zero-length messages included
    ),
    min_size=1,
    max_size=14,
)


def _overlaps(a, b):
    """Closed-interval intersection — the reference overlap relation."""
    return a.t_start <= b.t_finish and b.t_start <= a.t_finish


class TestOverlapRelation:
    @settings(max_examples=60, deadline=None)
    @given(raw=small_messages)
    def test_sweep_matches_brute_force_and_is_symmetric(self, raw):
        """The sweep yields exactly the unordered pairs a full O(n^2)
        scan finds; symmetry holds by construction of the scan."""
        pattern = _pattern(raw)
        if pattern is None:
            return
        msgs = pattern.messages
        swept = {frozenset({id(a), id(b)}) for a, b in overlap_pairs(pattern)}
        brute = {
            frozenset({id(msgs[i]), id(msgs[j])})
            for i in range(len(msgs))
            for j in range(i + 1, len(msgs))
            if _overlaps(msgs[i], msgs[j]) and _overlaps(msgs[j], msgs[i])
        }
        assert swept == brute

    @settings(max_examples=60, deadline=None)
    @given(raw=small_messages)
    def test_contention_events_are_canonical(self, raw):
        """Every emitted event is symmetric-canonical: first <= second,
        and building it from the swapped pair gives the same event."""
        pattern = _pattern(raw)
        if pattern is None:
            return
        for event in potential_contention_set(pattern):
            assert event.first <= event.second
            assert ContentionEvent.of(event.second, event.first) == event


class TestCliqueSoundness:
    @settings(max_examples=60, deadline=None)
    @given(raw=small_messages)
    def test_every_clique_pair_is_a_potential_contention(self, raw):
        """Messages active through the same contention period mutually
        overlap, so every distinct pair of clique communications must
        appear in the potential contention set (Definition 5 refines
        Definition 4)."""
        pattern = _pattern(raw)
        if pattern is None:
            return
        contention = potential_contention_set(pattern)
        for period in contention_periods(pattern):
            clique = sorted(period.clique)
            for i, a in enumerate(clique):
                for b in clique[i + 1 :]:
                    assert ContentionEvent.of(a, b) in contention, (
                        period,
                        a,
                        b,
                    )

    @settings(max_examples=60, deadline=None)
    @given(raw=small_messages)
    def test_periods_cover_every_message(self, raw):
        """Each message's communication shows up in at least one period
        (it is active at its own start time)."""
        pattern = _pattern(raw)
        if pattern is None:
            return
        covered = set()
        for period in contention_periods(pattern):
            covered |= period.clique
        assert covered == set(pattern.communications)


class TestTheoremAgainstBruteForce:
    @settings(max_examples=40, deadline=None)
    @given(raw=small_messages)
    def test_certificate_matches_exhaustive_conflict_scan(self, raw):
        """Theorem 1's violation set equals the brute-force scan: every
        unordered pair of time-overlapping messages with distinct
        communications whose mesh routes share a link."""
        pattern = _pattern(raw)
        if pattern is None:
            return
        routing = mesh_for(NUM_PROCESSES).routing
        cert = check_contention_free(pattern, routing)
        msgs = pattern.messages
        brute = set()
        for i in range(len(msgs)):
            for j in range(i + 1, len(msgs)):
                a, b = msgs[i], msgs[j]
                ca, cb = a.communication, b.communication
                if ca == cb or not _overlaps(a, b):
                    continue
                if shared_links(routing, ca, cb):
                    brute.add(ContentionEvent.of(ca, cb))
        assert {v.event for v in cert.violations} == brute
        assert cert.contention_free == (not brute)
