"""Unit tests for CommunicationPattern containers."""

import pytest

from repro.errors import PatternError
from repro.model import Communication, CommunicationPattern, Message

from tests.fixtures import figure1_pattern


def _msg(s, d, lo=0.0, hi=1.0, size=1024):
    return Message(source=s, dest=d, t_start=lo, t_finish=hi, size_bytes=size)


class TestConstruction:
    def test_from_messages_infers_process_count(self):
        p = CommunicationPattern.from_messages([_msg(0, 5), _msg(2, 3)])
        assert p.num_processes == 6

    def test_explicit_process_count_is_kept(self):
        p = CommunicationPattern.from_messages([_msg(0, 1)], num_processes=16)
        assert p.num_processes == 16

    def test_rejects_out_of_range_endpoint(self):
        with pytest.raises(PatternError):
            CommunicationPattern(messages=(_msg(0, 5),), num_processes=4)

    def test_rejects_empty_inference(self):
        with pytest.raises(PatternError):
            CommunicationPattern.from_messages([])

    def test_rejects_nonpositive_process_count(self):
        with pytest.raises(PatternError):
            CommunicationPattern(messages=(), num_processes=0)


class TestQueries:
    def test_len_and_iter(self):
        p = CommunicationPattern.from_messages([_msg(0, 1), _msg(1, 2)])
        assert len(p) == 2
        assert [m.source for m in p] == [0, 1]

    def test_communications_deduplicates(self):
        p = CommunicationPattern.from_messages(
            [_msg(0, 1, 0, 1), _msg(0, 1, 5, 6), _msg(1, 2)]
        )
        assert p.communications == {Communication(0, 1), Communication(1, 2)}

    def test_time_span(self):
        p = CommunicationPattern.from_messages([_msg(0, 1, 1.0, 2.0), _msg(1, 2, 0.5, 9.0)])
        assert p.time_span == (0.5, 9.0)

    def test_time_span_empty(self):
        p = CommunicationPattern(messages=(), num_processes=2)
        assert p.time_span == (0.0, 0.0)

    def test_total_bytes(self):
        p = CommunicationPattern.from_messages([_msg(0, 1, size=100), _msg(1, 2, size=50)])
        assert p.total_bytes == 150

    def test_messages_by_communication(self):
        p = CommunicationPattern.from_messages(
            [_msg(0, 1, 0, 1), _msg(0, 1, 2, 3), _msg(1, 0)]
        )
        groups = p.messages_by_communication()
        assert len(groups[Communication(0, 1)]) == 2
        assert len(groups[Communication(1, 0)]) == 1

    def test_sorted_by_start_orders_by_time(self):
        p = CommunicationPattern.from_messages([_msg(0, 1, 5, 6), _msg(1, 2, 0, 1)])
        assert [m.t_start for m in p.sorted_by_start()] == [0, 5]


class TestTransforms:
    def test_filter(self):
        p = CommunicationPattern.from_messages([_msg(0, 1), _msg(2, 3)])
        small = p.filter(lambda m: m.source == 0)
        assert len(small) == 1
        assert small.num_processes == p.num_processes

    def test_restrict_to(self):
        p = CommunicationPattern.from_messages([_msg(0, 1), _msg(2, 3), _msg(1, 3)])
        sub = p.restrict_to({0, 1})
        assert sub.communications == {Communication(0, 1)}

    def test_relabel(self):
        p = CommunicationPattern.from_messages([_msg(0, 1)], num_processes=2)
        q = p.relabel({0: 1, 1: 0})
        assert q.communications == {Communication(1, 0)}

    def test_relabel_requires_complete_mapping(self):
        p = CommunicationPattern.from_messages([_msg(0, 1)])
        with pytest.raises(PatternError):
            p.relabel({0: 1})

    def test_merged_with(self):
        a = CommunicationPattern.from_messages([_msg(0, 1)], num_processes=4)
        b = CommunicationPattern.from_messages([_msg(2, 3)], num_processes=8)
        merged = a.merged_with(b)
        assert len(merged) == 2
        assert merged.num_processes == 8


class TestFigure1Fixture:
    def test_has_three_phases_of_expected_sizes(self):
        p = figure1_pattern()
        by_tag = {}
        for m in p:
            by_tag.setdefault(m.tag, []).append(m)
        assert sorted(by_tag) == ["phase0", "phase1", "phase2"]
        # 4 rows x 4 exchange messages in each reduction phase; 12
        # transpose pairs in the final phase.
        assert len(by_tag["phase0"]) == 16
        assert len(by_tag["phase1"]) == 16
        assert len(by_tag["phase2"]) == 12
