"""Unit tests for messages and communications (Definitions 2 and 3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PatternError
from repro.model import Communication, Message


class TestCommunication:
    def test_holds_endpoints(self):
        c = Communication(3, 7)
        assert c.source == 3
        assert c.dest == 7

    def test_reversed_swaps_endpoints(self):
        assert Communication(3, 7).reversed == Communication(7, 3)

    def test_is_hashable_and_comparable(self):
        assert len({Communication(1, 2), Communication(1, 2)}) == 1
        assert Communication(1, 2) < Communication(1, 3) < Communication(2, 0)

    def test_rejects_self_message(self):
        with pytest.raises(PatternError):
            Communication(4, 4)

    def test_rejects_negative_ids(self):
        with pytest.raises(PatternError):
            Communication(-1, 2)
        with pytest.raises(PatternError):
            Communication(1, -2)

    def test_str_matches_paper_notation(self):
        assert str(Communication(2, 5)) == "(2,5)"


class TestMessage:
    def test_communication_property(self):
        m = Message(source=0, dest=1, t_start=0.0, t_finish=1.0)
        assert m.communication == Communication(0, 1)

    def test_duration(self):
        m = Message(source=0, dest=1, t_start=2.0, t_finish=5.5)
        assert m.duration == pytest.approx(3.5)

    def test_rejects_reversed_interval(self):
        with pytest.raises(PatternError):
            Message(source=0, dest=1, t_start=2.0, t_finish=1.0)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(PatternError):
            Message(source=0, dest=1, t_start=0.0, t_finish=1.0, size_bytes=0)

    def test_zero_duration_message_allowed(self):
        m = Message(source=0, dest=1, t_start=1.0, t_finish=1.0)
        assert m.duration == 0.0


class TestOverlap:
    def _msg(self, lo, hi):
        return Message(source=0, dest=1, t_start=lo, t_finish=hi)

    def test_disjoint_intervals_do_not_overlap(self):
        assert not self._msg(0, 1).overlaps(self._msg(2, 3))
        assert not self._msg(2, 3).overlaps(self._msg(0, 1))

    def test_touching_endpoints_overlap(self):
        # Definition 3 uses closed intervals: T_f(m1) == T_s(m2) overlaps.
        assert self._msg(0, 1).overlaps(self._msg(1, 2))

    def test_containment_overlaps(self):
        assert self._msg(0, 10).overlaps(self._msg(3, 4))
        assert self._msg(3, 4).overlaps(self._msg(0, 10))

    def test_partial_overlap(self):
        assert self._msg(0, 5).overlaps(self._msg(3, 8))

    @given(
        a=st.floats(min_value=0, max_value=100, allow_nan=False),
        b=st.floats(min_value=0, max_value=100, allow_nan=False),
        c=st.floats(min_value=0, max_value=100, allow_nan=False),
        d=st.floats(min_value=0, max_value=100, allow_nan=False),
    )
    def test_overlap_is_symmetric(self, a, b, c, d):
        m1 = self._msg(min(a, b), max(a, b))
        m2 = self._msg(min(c, d), max(c, d))
        assert m1.overlaps(m2) == m2.overlaps(m1)

    @given(
        a=st.floats(min_value=0, max_value=100, allow_nan=False),
        b=st.floats(min_value=0, max_value=100, allow_nan=False),
        c=st.floats(min_value=0, max_value=100, allow_nan=False),
        d=st.floats(min_value=0, max_value=100, allow_nan=False),
    )
    def test_overlap_matches_definition3_disjunction(self, a, b, c, d):
        """The interval test must equal the paper's four-way disjunction."""
        m1 = self._msg(min(a, b), max(a, b))
        m2 = self._msg(min(c, d), max(c, d))
        definition3 = (
            (m2.t_start <= m1.t_start <= m2.t_finish)
            or (m2.t_start <= m1.t_finish <= m2.t_finish)
            or (m1.t_start <= m2.t_start <= m1.t_finish)
            or (m1.t_start <= m2.t_finish <= m1.t_finish)
        )
        assert m1.overlaps(m2) == definition3
