"""Integration tests for Theorem 1 across model + topology layers."""

from repro.model import (
    Communication,
    CommunicationPattern,
    Message,
    check_contention_free,
    network_resource_conflict_set,
    potential_contention_set,
    shared_links,
)
from repro.topology import crossbar, fully_connected, mesh

from tests.fixtures import figure1_pattern, pattern_from_phases


def _msg(s, d, lo, hi):
    return Message(source=s, dest=d, t_start=lo, t_finish=hi)


class TestConflictSet:
    def test_crossbar_conflicts_only_on_endpoint_links(self):
        top = crossbar(4)
        comms = [Communication(0, 1), Communication(2, 3), Communication(0, 3)]
        r = network_resource_conflict_set(top.routing, comms)
        # (0,1)/(0,3) share processor 0's injection link; (0,3)/(2,3)
        # share processor 3's ejection link.  (0,1)/(2,3) are disjoint.
        assert {e.as_4tuple for e in r} == {(0, 1, 0, 3), (0, 3, 2, 3)}

    def test_fully_connected_distinct_pairs_do_not_conflict(self):
        top = fully_connected(6)
        comms = [Communication(0, 1), Communication(2, 3), Communication(4, 5)]
        assert network_resource_conflict_set(top.routing, comms) == frozenset()

    def test_mesh_dor_conflict_detected(self):
        top = mesh(4, 1)
        # 0->3 and 1->2 both cross the middle link S1->S2.
        comms = [Communication(0, 3), Communication(1, 2)]
        r = network_resource_conflict_set(top.routing, comms)
        assert len(r) == 1
        witness = shared_links(top.routing, comms[0], comms[1])
        assert witness  # the shared middle link

    def test_opposite_directions_do_not_conflict(self):
        top = mesh(4, 1)
        comms = [Communication(0, 3), Communication(3, 0)]
        assert network_resource_conflict_set(top.routing, comms) == frozenset()


class TestTheorem1:
    def test_crossbar_is_contention_free_for_figure1(self):
        pattern = figure1_pattern()
        cert = check_contention_free(pattern, crossbar(16).routing)
        assert cert.contention_free
        assert cert.violations == ()
        assert bool(cert)

    def test_mesh_blocks_the_transpose_phase(self):
        """A 4x4 DOR mesh cannot route the CG transpose without sharing
        links among temporally-overlapping messages."""
        pattern = figure1_pattern()
        cert = check_contention_free(pattern, mesh(4, 4).routing)
        assert not cert.contention_free
        assert len(cert.violations) > 0

    def test_sequential_pattern_is_contention_free_anywhere(self):
        # One message at a time: C is empty, any network qualifies.
        msgs = [_msg(i, (i + 1) % 4, 10 * i, 10 * i + 1) for i in range(4)]
        pattern = CommunicationPattern.from_messages(msgs, num_processes=4)
        assert potential_contention_set(pattern) == frozenset()
        cert = check_contention_free(pattern, mesh(2, 2).routing)
        assert cert.contention_free

    def test_violation_reports_witness_links(self):
        pattern = pattern_from_phases([[(0, 3), (1, 2)]], num_processes=4)
        cert = check_contention_free(pattern, mesh(4, 1).routing)
        assert not cert.contention_free
        v = cert.violations[0]
        assert "share" in str(v)
        assert v.links  # names the shared link resources

    def test_certificate_counts(self):
        pattern = pattern_from_phases([[(0, 1), (2, 3)]], num_processes=4)
        cert = check_contention_free(pattern, crossbar(4).routing)
        assert cert.contention_set_size == 1
        assert cert.conflict_set_size == 0

    def test_mesh_contention_free_for_disjoint_neighbours(self):
        # Neighbouring pairs on disjoint rows never share mesh links.
        pattern = pattern_from_phases(
            [[(0, 1), (2, 3)], [(1, 0), (3, 2)]], num_processes=4
        )
        cert = check_contention_free(pattern, mesh(2, 2).routing)
        assert cert.contention_free
