"""Unit tests for contention periods and clique sets (Definition 5)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.model import (
    CliqueAnalysis,
    Communication,
    CommunicationPattern,
    Message,
    clique_set,
    contention_periods,
    describe_periods,
    maximum_clique_set,
    potential_contention_set,
)

from tests.fixtures import figure1_pattern, paper_period3_clique


def _msg(s, d, lo, hi):
    return Message(source=s, dest=d, t_start=lo, t_finish=hi)


def _c(s, d):
    return Communication(s, d)


class TestContentionPeriods:
    def test_empty_pattern_has_no_periods(self):
        p = CommunicationPattern(messages=(), num_processes=2)
        assert contention_periods(p) == []

    def test_single_message_single_period(self):
        p = CommunicationPattern.from_messages([_msg(0, 1, 0, 2)])
        periods = contention_periods(p)
        assert len(periods) == 1
        assert periods[0].clique == {_c(0, 1)}
        assert (periods[0].t_start, periods[0].t_end) == (0, 2)

    def test_staggered_messages_make_three_periods(self):
        # a: [0,2], b: [1,3] -> periods {a}, {a,b}, {b}.
        p = CommunicationPattern.from_messages([_msg(0, 1, 0, 2), _msg(2, 3, 1, 3)])
        cliques = [per.clique for per in contention_periods(p)]
        assert cliques == [
            frozenset({_c(0, 1)}),
            frozenset({_c(0, 1), _c(2, 3)}),
            frozenset({_c(2, 3)}),
        ]

    def test_gap_between_messages_yields_no_empty_period(self):
        p = CommunicationPattern.from_messages([_msg(0, 1, 0, 1), _msg(2, 3, 5, 6)])
        periods = contention_periods(p)
        assert [per.clique for per in periods] == [
            frozenset({_c(0, 1)}),
            frozenset({_c(2, 3)}),
        ]

    def test_instantaneous_message_is_covered(self):
        p = CommunicationPattern.from_messages([_msg(0, 1, 1, 1), _msg(2, 3, 0, 2)])
        cliques = {per.clique for per in contention_periods(p)}
        assert frozenset({_c(0, 1), _c(2, 3)}) in cliques

    def test_describe_periods_is_readable(self):
        p = CommunicationPattern.from_messages([_msg(0, 1, 0, 1)])
        text = describe_periods(contention_periods(p))
        assert "period 1" in text
        assert "(0,1)" in text


class TestMaximumCliqueSet:
    def test_subset_cliques_are_removed(self):
        small = frozenset({_c(0, 1), _c(1, 2)})
        big = frozenset({_c(0, 1), _c(1, 2), _c(2, 3)})
        assert maximum_clique_set([small, big]) == (big,)

    def test_incomparable_cliques_are_both_kept(self):
        a = frozenset({_c(0, 1), _c(1, 2)})
        b = frozenset({_c(2, 3), _c(3, 4)})
        assert set(maximum_clique_set([a, b])) == {a, b}

    def test_duplicates_collapse(self):
        a = frozenset({_c(0, 1)})
        assert maximum_clique_set([a, a, a]) == (a,)

    def test_deterministic_order_largest_first(self):
        a = frozenset({_c(0, 1)})
        b = frozenset({_c(2, 3), _c(3, 4)})
        assert maximum_clique_set([a, b]) == (b, a)

    @given(
        st.lists(
            st.frozensets(
                st.sampled_from([_c(0, 1), _c(1, 2), _c(2, 3), _c(3, 4), _c(4, 5)]),
                min_size=1,
                max_size=5,
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_every_input_clique_is_covered(self, cliques):
        """Each original clique is a subset of some retained maximal clique."""
        maximal = maximum_clique_set(cliques)
        for c in cliques:
            assert any(c <= m for m in maximal)
        # And no retained clique covers another.
        for m1 in maximal:
            for m2 in maximal:
                assert m1 == m2 or not (m1 < m2)


class TestFigure1:
    def test_three_contention_periods(self):
        analysis = CliqueAnalysis.of(figure1_pattern())
        assert len(analysis.periods) == 3
        assert len(analysis.max_cliques) == 3

    def test_period3_matches_paper_clique(self):
        """The transpose period equals the clique printed in Section 2.2."""
        analysis = CliqueAnalysis.of(figure1_pattern())
        assert analysis.periods[2].clique == paper_period3_clique()

    def test_largest_clique_is_the_reduction_phase(self):
        analysis = CliqueAnalysis.of(figure1_pattern())
        assert analysis.largest_clique_size == 16

    def test_cliques_containing(self):
        analysis = CliqueAnalysis.of(figure1_pattern())
        # Communication (8,9) (paper's (9,10)) only occurs in the first
        # reduction phase.
        hits = analysis.cliques_containing(_c(8, 9))
        assert len(hits) == 1

    def test_contention_events_match_direct_computation(self):
        pattern = figure1_pattern()
        analysis = CliqueAnalysis.of(pattern)
        assert analysis.contention_events() == potential_contention_set(pattern)

    def test_conflicting_pairs_by_comm(self):
        analysis = CliqueAnalysis.of(figure1_pattern())
        rivals = analysis.conflicting_pairs_by_comm()
        # In the transpose phase, (1,4) conflicts with the 11 other
        # transpose communications.
        assert len(rivals[_c(1, 4)] & paper_period3_clique()) == 11


class TestCliqueSetInvariants:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4),
                st.integers(min_value=0, max_value=4),
                st.integers(min_value=0, max_value=20),
                st.integers(min_value=1, max_value=6),
            ),
            min_size=1,
            max_size=15,
        )
    )
    def test_every_message_is_in_some_clique(self, raw):
        msgs = [
            _msg(s, d, float(lo), float(lo + dur))
            for s, d, lo, dur in raw
            if s != d
        ]
        if not msgs:
            return
        p = CommunicationPattern.from_messages(msgs, num_processes=5)
        cliques = clique_set(p)
        union = set()
        for c in cliques:
            union |= c
        assert union == p.communications

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4),
                st.integers(min_value=0, max_value=4),
                st.integers(min_value=0, max_value=20),
                st.integers(min_value=1, max_value=6),
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_cliques_really_are_cliques_of_the_overlap_relation(self, raw):
        """Every pair inside a period's clique must overlap in time."""
        msgs = [
            _msg(s, d, float(lo), float(lo + dur))
            for s, d, lo, dur in raw
            if s != d
        ]
        if not msgs:
            return
        p = CommunicationPattern.from_messages(msgs, num_processes=5)
        events = potential_contention_set(p)
        analysis = CliqueAnalysis.of(p)
        assert analysis.contention_events() <= events
