"""Property-based tests of Theorem 1's machinery across layers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import (
    CommunicationPattern,
    Message,
    check_contention_free,
    network_resource_conflict_set,
    potential_contention_set,
)
from repro.topology import ShortestPathRouting, crossbar, fully_connected, mesh_for


def _pattern(raw, n=6):
    msgs = [
        Message(source=s, dest=d, t_start=float(lo), t_finish=float(lo + dur))
        for s, d, lo, dur in raw
        if s != d
    ]
    if not msgs:
        return None
    return CommunicationPattern.from_messages(msgs, num_processes=n)


small_messages = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=1, max_value=5),
    ),
    min_size=1,
    max_size=14,
)


class TestTheoremProperties:
    @settings(max_examples=40, deadline=None)
    @given(raw=small_messages)
    def test_fully_connected_certificate_only_fails_on_endpoint_sharing(self, raw):
        """On a fully-connected switch graph, paths share links only at
        endpoints, so a violation implies two overlapping messages with
        a shared source or destination."""
        pattern = _pattern(raw)
        if pattern is None:
            return
        cert = check_contention_free(pattern, fully_connected(6).routing)
        for violation in cert.violations:
            a, b = violation.event.first, violation.event.second
            assert a.source == b.source or a.dest == b.dest

    @settings(max_examples=40, deadline=None)
    @given(raw=small_messages)
    def test_crossbar_matches_fully_connected_verdict(self, raw):
        """Crossbar and fully-connected networks have identical sharing
        structure (endpoint links only), so Theorem 1 must agree."""
        pattern = _pattern(raw)
        if pattern is None:
            return
        xbar = check_contention_free(pattern, crossbar(6).routing)
        full = check_contention_free(pattern, fully_connected(6).routing)
        assert xbar.contention_free == full.contention_free

    @settings(max_examples=30, deadline=None)
    @given(raw=small_messages)
    def test_mesh_never_beats_crossbar_on_contention(self, raw):
        """Any violation on the crossbar (endpoint conflicts) also
        exists on the mesh — a mesh path includes the same endpoint
        links."""
        pattern = _pattern(raw)
        if pattern is None:
            return
        xbar = check_contention_free(pattern, crossbar(6).routing)
        msh = check_contention_free(pattern, mesh_for(6).routing)
        xbar_events = {v.event for v in xbar.violations}
        mesh_events = {v.event for v in msh.violations}
        assert xbar_events <= mesh_events

    @settings(max_examples=30, deadline=None)
    @given(raw=small_messages)
    def test_conflict_set_is_monotone_in_communications(self, raw):
        """Adding communications can only grow R."""
        pattern = _pattern(raw)
        if pattern is None:
            return
        routing = ShortestPathRouting(mesh_for(6).network)
        comms = sorted(pattern.communications)
        half = comms[: max(1, len(comms) // 2)]
        r_half = network_resource_conflict_set(routing, half)
        r_full = network_resource_conflict_set(routing, comms)
        assert r_half <= r_full

    @settings(max_examples=30, deadline=None)
    @given(raw=small_messages)
    def test_contention_set_invariant_under_message_order(self, raw):
        pattern = _pattern(raw)
        if pattern is None:
            return
        shuffled = CommunicationPattern(
            messages=tuple(reversed(pattern.messages)),
            num_processes=pattern.num_processes,
        )
        assert potential_contention_set(pattern) == potential_contention_set(shuffled)
