"""Tests for pattern serialization."""

import pytest

from repro.errors import PatternError
from repro.model import read_pattern, write_pattern

from tests.fixtures import figure1_pattern, pattern_from_phases


class TestRoundTrip:
    def test_figure1_round_trips(self, tmp_path):
        original = figure1_pattern()
        path = tmp_path / "cg.json"
        write_pattern(original, path)
        loaded = read_pattern(path)
        assert loaded == original

    def test_sizes_and_tags_preserved(self, tmp_path):
        p = pattern_from_phases([[(0, 1)]], num_processes=2, size_bytes=777)
        path = tmp_path / "p.json"
        write_pattern(p, path)
        loaded = read_pattern(path)
        assert loaded.messages[0].size_bytes == 777
        assert loaded.messages[0].tag == "phase0"


class TestErrors:
    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(PatternError):
            read_pattern(path)

    def test_wrong_format_version_rejected(self, tmp_path):
        path = tmp_path / "v9.json"
        path.write_text('{"format": 9, "messages": []}')
        with pytest.raises(PatternError):
            read_pattern(path)

    def test_malformed_records_rejected(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(
            '{"format": 1, "name": "x", "num_processes": 2, '
            '"messages": [{"source": 0}]}'
        )
        with pytest.raises(PatternError):
            read_pattern(path)

    def test_non_dict_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(PatternError):
            read_pattern(path)


class TestSynthesisFromFile:
    def test_saved_pattern_drives_synthesis(self, tmp_path):
        from repro.synthesis import generate_network

        path = tmp_path / "app.json"
        write_pattern(pattern_from_phases([[(0, 1), (2, 3)]], 4), path)
        design = generate_network(read_pattern(path), seed=0, restarts=1)
        assert design.certificate.contention_free
