"""Tests for the partial-permutation precondition (Definition 5's
observation, enforced by the synthesizer)."""

import pytest

from repro.errors import SynthesisError
from repro.model import Communication, permutation_violations
from repro.synthesis import generate_network

from tests.fixtures import figure1_pattern, pattern_from_phases


def _c(s, d):
    return Communication(s, d)


class TestPermutationViolations:
    def test_partial_permutation_passes(self):
        clique = frozenset({_c(0, 1), _c(2, 3)})
        assert permutation_violations([clique]) == []

    def test_full_permutation_passes(self):
        clique = frozenset({_c(0, 1), _c(1, 2), _c(2, 0)})
        assert permutation_violations([clique]) == []

    def test_duplicate_source_flagged(self):
        clique = frozenset({_c(0, 1), _c(0, 2)})
        violations = permutation_violations([clique])
        assert len(violations) == 1
        assert "send more than once" in violations[0][1]

    def test_duplicate_dest_flagged(self):
        clique = frozenset({_c(1, 0), _c(2, 0)})
        violations = permutation_violations([clique])
        assert "receive more than once" in violations[0][1]

    def test_figure1_is_clean(self):
        from repro.model import CliqueAnalysis

        analysis = CliqueAnalysis.of(figure1_pattern())
        assert permutation_violations(analysis.max_cliques) == []


class TestSynthesizerRejection:
    def test_broadcast_in_one_period_rejected_with_guidance(self):
        pattern = pattern_from_phases(
            [[(0, 1), (0, 2), (0, 3)]], num_processes=4, name="bcast"
        )
        with pytest.raises(SynthesisError, match="partial permutation"):
            generate_network(pattern, seed=0, restarts=1)

    def test_fan_in_rejected(self):
        pattern = pattern_from_phases(
            [[(1, 0), (2, 0)]], num_processes=3, name="fanin"
        )
        with pytest.raises(SynthesisError, match="receive more than once"):
            generate_network(pattern, seed=0, restarts=1)

    def test_staged_broadcast_accepted(self):
        pattern = pattern_from_phases(
            [[(0, 1)], [(0, 2), (1, 3)]], num_processes=4, name="tree"
        )
        design = generate_network(pattern, seed=0, restarts=1)
        assert design.certificate.contention_free
