"""Shared test fixtures: small hand-built patterns, including the
paper's Figure 1 CG example (translated to 0-indexed processors)."""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.model import Communication, CommunicationPattern, Message


def pattern_from_phases(
    phases: Sequence[Sequence[Tuple[int, int]]],
    num_processes: int,
    name: str = "fixture",
    size_bytes: int = 1024,
) -> CommunicationPattern:
    """Build a pattern where phase ``i`` occupies the interval (i, i+0.9).

    Phases are strictly separated in time (no shared endpoints), so each
    phase is exactly one contention period.
    """
    messages: List[Message] = []
    for i, phase in enumerate(phases):
        for s, d in phase:
            messages.append(
                Message(
                    source=s,
                    dest=d,
                    t_start=float(i),
                    t_finish=i + 0.9,
                    size_bytes=size_bytes,
                    tag=f"phase{i}",
                )
            )
    return CommunicationPattern(
        messages=tuple(messages), num_processes=num_processes, name=name
    )


def _row_exchange(row: Sequence[int], distance: int) -> List[Tuple[int, int]]:
    """Pairwise exchange at ``distance`` within a row (both directions)."""
    msgs = []
    n = len(row)
    for i in range(n):
        j = i ^ distance
        if j < n:
            msgs.append((row[i], row[j]))
    return msgs


def figure1_pattern() -> CommunicationPattern:
    """The CG communication pattern of the paper's Figure 1 (16 nodes).

    Three contention periods: row-reduction exchanges at distance 1 and
    2 within each row of a 4x4 process grid, then the matrix-transpose
    exchange.  Period 3 matches the clique listed in Section 2.2 (the
    paper uses 1-indexed nodes; we use 0-indexed).
    """
    rows = [[4 * r + c for c in range(4)] for r in range(4)]
    phase1 = [m for row in rows for m in _row_exchange(row, 1)]
    phase2 = [m for row in rows for m in _row_exchange(row, 2)]
    phase3 = []
    for r in range(4):
        for c in range(4):
            if r != c:
                phase3.append((4 * r + c, 4 * c + r))
    return pattern_from_phases(
        [phase1, phase2, phase3], num_processes=16, name="figure1-cg"
    )


# The transpose clique of the paper's "Contention Period 3", 1-indexed
# as printed: {(2,5), (5,2), (3,9), (9,3), (4,13), (13,4), (7,10),
# (10,7), (8,14), (14,8), (12,15), (15,12)}.
PAPER_PERIOD3_1INDEXED = [
    (2, 5), (5, 2), (3, 9), (9, 3), (4, 13), (13, 4),
    (7, 10), (10, 7), (8, 14), (14, 8), (12, 15), (15, 12),
]


def paper_period3_clique() -> frozenset:
    """Period-3 clique translated to 0-indexed communications."""
    return frozenset(Communication(s - 1, d - 1) for s, d in PAPER_PERIOD3_1INDEXED)
