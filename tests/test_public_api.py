"""The top-level package exposes the documented public API and the
README quickstart flow works verbatim."""

import repro


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__


class TestReadmeQuickstart:
    def test_quickstart_flow(self):
        app = repro.PhaseProgramBuilder(8, "my-accelerator")
        app.compute(2000)
        app.phase([(0, 1, 512), (2, 3, 512), (4, 5, 512), (6, 7, 512)])
        app.compute(2000)
        app.phase([(i, i ^ 4, 512) for i in range(8)])
        program = app.build()

        pattern = repro.extract_pattern(program)
        design = repro.generate_network(
            pattern, constraints=repro.DesignConstraints(max_degree=5), restarts=4
        )
        assert design.certificate.contention_free

        result = repro.simulate(program, design.topology)
        mesh_result = repro.simulate(program, repro.mesh_for(8))
        assert result.delivered_packets == program.total_messages
        assert result.execution_cycles <= 1.05 * mesh_result.execution_cycles

    def test_pattern_files_round_trip(self, tmp_path):
        bench = repro.benchmark("cg", 8)
        path = tmp_path / "cg.json"
        repro.write_pattern(bench.pattern, path)
        assert repro.read_pattern(path) == bench.pattern
