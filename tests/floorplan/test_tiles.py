"""Tests for the tile/corner geometry."""

import pytest

from repro.errors import FloorplanError
from repro.floorplan import TileGrid, manhattan


class TestTileGrid:
    def test_rejects_degenerate_grid(self):
        with pytest.raises(FloorplanError):
            TileGrid(0, 3)

    def test_cell_and_corner_counts(self):
        g = TileGrid(4, 2)
        assert g.num_cells == 8
        assert len(g.cells()) == 8
        assert len(g.corners()) == 5 * 3

    def test_cell_corners(self):
        g = TileGrid(2, 2)
        assert g.cell_corners((0, 0)) == {(0, 0), (1, 0), (0, 1), (1, 1)}

    def test_out_of_grid_cell_rejected(self):
        g = TileGrid(2, 2)
        with pytest.raises(FloorplanError):
            g.cell_corners((5, 0))

    def test_corner_cells_interior(self):
        g = TileGrid(3, 3)
        # An interior corner touches four tiles.
        assert len(g.corner_cells((1, 1))) == 4

    def test_corner_cells_boundary(self):
        g = TileGrid(3, 3)
        assert len(g.corner_cells((0, 0))) == 1
        assert len(g.corner_cells((3, 0))) == 1
        assert len(g.corner_cells((1, 0))) == 2

    def test_touches(self):
        g = TileGrid(2, 2)
        assert g.touches((0, 0), (1, 1))
        assert not g.touches((0, 0), (2, 2))


class TestManhattan:
    def test_colocated_corners_cost_zero(self):
        # "Physically adjacent switches" (shared corner region) consume
        # zero link area, per Section 4.1.
        assert manhattan((1, 1), (1, 1)) == 0

    def test_mesh_neighbours_cost_one(self):
        assert manhattan((0, 0), (1, 0)) == 1

    def test_far_corners(self):
        assert manhattan((0, 0), (2, 3)) == 5
