"""Tests for SA placement and the area model."""

import pytest

from repro.errors import FloorplanError
from repro.floorplan import TileGrid, measure_area, mesh_areas, place
from repro.topology import Network, crossbar, mesh, mesh_for, torus_for


def _clustered_network():
    """Eight processors on four switches in a chain — easily placeable."""
    net = Network(8)
    switches = [net.add_switch() for _ in range(4)]
    for p in range(8):
        net.attach_processor(p, switches[p // 2])
    for u, v in zip(switches, switches[1:]):
        net.add_link(u, v)
    return net


class TestPlace:
    def test_feasible_placement_for_clustered_network(self):
        plan = place(_clustered_network(), seed=0)
        assert plan.feasible

    def test_every_processor_gets_a_distinct_cell(self):
        plan = place(_clustered_network(), seed=1)
        cells = list(plan.processor_cell.values())
        assert len(set(cells)) == len(cells)

    def test_adjacency_constraint_when_feasible(self):
        net = _clustered_network()
        plan = place(net, seed=0)
        if plan.feasible:
            for p in range(8):
                corner = plan.switch_corner[net.switch_of(p)]
                assert plan.grid.touches(plan.processor_cell[p], corner)

    def test_crossbar_cannot_be_feasible_beyond_four(self):
        """A single switch can host at most the four tiles around its
        corner, so an 8-processor crossbar never places feasibly."""
        plan = place(crossbar(8).network, seed=0)
        assert not plan.feasible

    def test_grid_too_small_rejected(self):
        with pytest.raises(FloorplanError):
            place(_clustered_network(), grid=TileGrid(2, 2))

    def test_link_delays_min_one(self):
        plan = place(_clustered_network(), seed=0)
        assert all(d >= 1 for d in plan.link_delays().values())

    def test_deterministic_by_seed(self):
        a = place(_clustered_network(), seed=5)
        b = place(_clustered_network(), seed=5)
        assert a.switch_corner == b.switch_corner
        assert a.processor_cell == b.processor_cell


class TestAreaModel:
    def test_mesh_reference_values(self):
        sw, link = mesh_areas(16)
        assert sw == 16.0
        assert link == 24.0

    def test_mesh_report_is_identity(self):
        report = measure_area(mesh_for(16))
        assert report.switch_ratio == 1.0
        assert report.link_ratio == 1.0

    def test_torus_doubles_link_area(self):
        report = measure_area(torus_for(16))
        assert report.switch_ratio == 1.0
        assert report.link_ratio == 2.0

    def test_generated_like_network_is_cheaper_than_mesh(self):
        from repro.topology import Topology, ShortestPathRouting

        net = _clustered_network()
        top = Topology(
            name="custom",
            network=net,
            routing=ShortestPathRouting(net),
            kind="generated",
        )
        report = measure_area(top, seed=0)
        assert report.switch_ratio == 4 / 8
        assert report.link_ratio < 1.0
        assert report.total_ratio < 1.0

    def test_total_ratio_combines_both(self):
        report = measure_area(torus_for(16))
        assert report.total_ratio == pytest.approx((16 + 48) / (16 + 24))
