"""Tests for floorplan rendering."""

from repro.floorplan import place
from repro.topology import Network


def _net():
    net = Network(4)
    a, b = net.add_switch(), net.add_switch()
    for p, s in [(0, a), (1, a), (2, b), (3, b)]:
        net.attach_processor(p, s)
    net.add_link(a, b)
    return net


class TestRender:
    def test_mentions_every_processor_and_switch(self):
        plan = place(_net(), seed=0)
        text = plan.render()
        for p in range(4):
            assert f"P{p}" in text
        assert "S0 at corner" in text and "S1 at corner" in text

    def test_grid_rows_match_height(self):
        plan = place(_net(), seed=0)
        rows = [l for l in plan.render().splitlines() if "P" in l and "corner" not in l]
        assert len(rows) == plan.grid.height
