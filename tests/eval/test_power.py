"""Tests for the energy model extension."""

import pytest

from repro.eval.power import EnergyModel, estimate_energy
from repro.simulator import SimConfig, simulate
from repro.topology import crossbar, mesh
from repro.workloads import PhaseProgramBuilder


def _program(n=4, size=256):
    b = PhaseProgramBuilder(n, "pwr")
    for k in range(3):
        b.compute(100)
        b.phase([(i, (i + 1 + k) % n, size) for i in range(n)])
    return b.build()


class TestEnergyModel:
    def test_negative_constants_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(switch_traversal_pj=-1)

    def test_energy_positive_for_real_traffic(self):
        result = simulate(_program(), mesh(2, 2), SimConfig())
        report = estimate_energy(result, num_switches=4, num_links=4)
        assert report.dynamic_pj > 0
        assert report.static_pj > 0
        assert report.total_pj == report.dynamic_pj + report.static_pj

    def test_longer_links_cost_more_dynamic_energy(self):
        result = simulate(_program(), mesh(2, 2), SimConfig())
        short = estimate_energy(
            result, num_switches=4, link_lengths={i: 1 for i in range(4)}
        )
        long = estimate_energy(
            result, num_switches=4, link_lengths={i: 3 for i in range(4)}
        )
        assert long.dynamic_pj > short.dynamic_pj
        assert long.static_pj > short.static_pj

    def test_more_switches_leak_more(self):
        result = simulate(_program(), mesh(2, 2), SimConfig())
        few = estimate_energy(result, num_switches=2, num_links=4)
        many = estimate_energy(result, num_switches=16, num_links=4)
        assert many.static_pj > few.static_pj
        assert many.dynamic_pj == few.dynamic_pj

    def test_generated_network_beats_mesh_on_energy(self):
        """The future-work claim: fewer switches and shorter paths mean
        less energy for the same workload."""
        from repro.floorplan import place
        from repro.synthesis import generate_network
        from repro.workloads import cg

        bench = cg(8, iterations=1)
        design = generate_network(bench.pattern, seed=0, restarts=4)
        plan = place(design.network, seed=0)
        cfg = SimConfig(max_cycles=5_000_000)
        gen = simulate(
            bench.program, design.topology, cfg, link_delays=plan.link_delays()
        )
        top = __import__("repro.topology", fromlist=["mesh_for"]).mesh_for(8)
        msh = simulate(bench.program, top, cfg)
        gen_e = estimate_energy(
            gen, num_switches=design.num_switches, link_lengths=plan.link_costs
        )
        mesh_e = estimate_energy(
            msh,
            num_switches=top.network.num_switches,
            link_lengths={l.link_id: 1 for l in top.network.links},
        )
        assert gen_e.total_pj < mesh_e.total_pj
