"""Tests for the figure-table renderers."""

from repro.eval.experiments import CrossWorkloadRow, Figure7Row, Figure8Row
from repro.eval.report import (
    cross_workload_table,
    figure7_table,
    figure8_table,
)


def _f7(benchmark="cg-16", sw=0.5, link=0.42):
    return Figure7Row(
        benchmark=benchmark,
        num_processes=16,
        generated_switch_ratio=sw,
        generated_link_ratio=link,
        num_switches=8,
        num_links=10,
    )


class TestFigure7Table:
    def test_contains_title_and_values(self):
        text = figure7_table([_f7()], "Figure 7(b)")
        assert text.startswith("Figure 7(b)")
        assert "0.50" in text and "0.42" in text

    def test_torus_reference_columns(self):
        text = figure7_table([_f7()], "t")
        assert "2.00" in text  # torus link factor

    def test_column_alignment(self):
        rows = [_f7("a"), _f7("much-longer-name")]
        text = figure7_table(rows, "t")
        lines = text.splitlines()
        # Separator and data lines start aligned with the header.
        assert len(lines[1]) >= len("benchmark")
        assert "much-longer-name" in text


class TestFigure8Table:
    def test_ratios_formatted(self):
        row = Figure8Row(
            benchmark="cg-16",
            num_processes=16,
            topology="mesh",
            execution_ratio=1.2835,
            communication_ratio=1.5714,
            execution_cycles=24000,
            avg_comm_cycles=9000.0,
            deadlocks=0,
        )
        text = figure8_table([row], "t")
        assert "1.283" in text or "1.284" in text
        assert "1.571" in text

    def test_deadlock_column(self):
        row = Figure8Row(
            benchmark="x", num_processes=8, topology="torus",
            execution_ratio=1.0, communication_ratio=1.0,
            execution_cycles=1, avg_comm_cycles=1.0, deadlocks=3,
        )
        assert "3" in figure8_table([row], "t").splitlines()[-1]


class TestCrossWorkloadTable:
    def test_signed_percentages(self):
        rows = [
            CrossWorkloadRow("fft-16", "own", 100, 0.0),
            CrossWorkloadRow("fft-16", "host", 122, 0.22),
        ]
        text = cross_workload_table(rows, "t")
        assert "+0.0%" in text
        assert "+22.0%" in text
