"""Regression tests for ``ResultCache.stats``: synthesis payloads must
be enumerated, not lumped into (or dropped from) the eval totals.

``repro cache info`` historically reported only ``results`` / ``setups``
/ ``bytes``; SynthesisCell payloads (designs and infeasible-seed
markers) and service job bundles were invisible.  These tests pin the
categorized breakdown and that ``clear`` removes every family.
"""

import pytest

from repro.eval.parallel import (
    PerformanceCell,
    ResultCache,
    SynthesisCell,
    run_cells,
)
from repro.eval.runner import prepare
from repro.simulator.config import SimConfig
from repro.synthesis import DesignConstraints
from repro.workloads import benchmark

#: No cg-8 seed satisfies a degree-2 bound (every synthesis attempt
#: fails), so this constraint deterministically produces an
#: infeasible-seed cache entry.
INFEASIBLE = DesignConstraints(max_degree=2)


@pytest.fixture(scope="module")
def populated_cache(tmp_path_factory):
    cache = ResultCache(str(tmp_path_factory.mktemp("cache")))
    pattern = benchmark("cg", 8).pattern
    setup = prepare("cg", 8, seed=0)
    cells = [
        SynthesisCell(
            label="synth:ok", pattern=pattern, seed=0,
            constraints=DesignConstraints(max_degree=5), restarts=2,
        ),
        SynthesisCell(
            label="synth:infeasible", pattern=pattern, seed=0,
            constraints=INFEASIBLE, restarts=2,
        ),
        PerformanceCell(
            label="perf:mesh",
            program=setup.benchmark.program,
            topology=setup.topology("mesh"),
            config=SimConfig(),
            link_delays=setup.link_delays("mesh"),
        ),
    ]
    run_cells(cells, cache=cache)
    cache.put_bundle("f" * 64, {"schema": 1, "kind": "simulate", "results": {}})
    return cache


class TestStatsBreakdown:
    def test_synthesis_payloads_are_enumerated(self, populated_cache):
        stats = populated_cache.stats()
        assert stats["synthesis_results"] == 2
        assert stats["synthesis_ok"] == 1
        assert stats["synthesis_infeasible"] == 1
        assert stats["synthesis_bytes"] > 0

    def test_eval_payloads_stay_separate(self, populated_cache):
        stats = populated_cache.stats()
        assert stats["eval_results"] == 1
        assert stats["eval_bytes"] > 0

    def test_bundles_are_counted(self, populated_cache):
        stats = populated_cache.stats()
        assert stats["bundles"] == 1
        assert stats["bundle_bytes"] > 0

    def test_totals_remain_backward_compatible(self, populated_cache):
        stats = populated_cache.stats()
        assert stats["results"] == stats["eval_results"] + stats["synthesis_results"]
        assert stats["bytes"] == (
            stats["eval_bytes"] + stats["synthesis_bytes"] + stats["bundle_bytes"]
        )


class TestBundleStore:
    def test_roundtrip_and_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.get_bundle("a" * 64) is None
        cache.put_bundle("a" * 64, {"schema": 1, "kind": "sweep"})
        assert cache.get_bundle("a" * 64) == {"schema": 1, "kind": "sweep"}

    def test_corrupt_bundle_is_a_miss_and_dropped(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put_bundle("b" * 64, {"schema": 1})
        path = cache.jobs_dir / ("b" * 64 + ".json")
        path.write_text("{torn")
        assert cache.get_bundle("b" * 64) is None
        assert not path.exists()

    def test_clear_removes_bundles_too(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put_bundle("c" * 64, {"schema": 1})
        cache.put_result("d" * 64, {"status": "ok"})
        assert cache.clear() == 2
        assert cache.stats()["results"] == 0
        assert cache.stats()["bundles"] == 0
