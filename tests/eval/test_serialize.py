"""Round-trip and stability tests for the result serialization layer."""

import json

import pytest

from repro.eval.serialize import (
    SerializationError,
    canonical_json,
    config_from_dict,
    config_to_dict,
    decode_link_utilization,
    decode_resource,
    design_from_dict,
    design_to_dict,
    encode_link_utilization,
    encode_resource,
    loadpoint_from_dict,
    loadpoint_to_dict,
    result_from_dict,
    result_to_dict,
)
from repro.simulator import SimConfig, simulate
from repro.simulator.openloop import LoadPoint, run_open_loop
from repro.topology import mesh
from repro.topology import crossbar
from repro.workloads import PhaseProgramBuilder


def _small_result():
    program = (
        PhaseProgramBuilder(4, "tiny")
        .compute(10)
        .phase([(0, 1, 64), (2, 3, 128)])
        .phase([(1, 0, 32)])
        .build()
    )
    return simulate(program, crossbar(4), SimConfig())


class TestResourceEncoding:
    def test_known_encodings(self):
        assert encode_resource(("link", 3, 0)) == "link:3:0"
        assert encode_resource(("link", 12, 1)) == "link:12:1"
        assert encode_resource(("inj", 2)) == "inj:2"
        assert encode_resource(("ej", 15)) == "ej:15"

    def test_decode_inverts_encode(self):
        for res in (("link", 0, 0), ("link", 7, 1), ("inj", 0), ("ej", 9)):
            assert decode_resource(encode_resource(res)) == res

    @pytest.mark.parametrize(
        "bad",
        [
            ("queue", 1),  # unknown kind
            ("link", 3),  # missing direction
            ("link", 3, 0, 1),  # extra field
            ("inj", 1, 2),  # extra field
            ("link", "3", 0),  # non-integer field
            ("link", True, 0),  # bool is not an id
            (),
            "link:3:0",  # not a tuple
        ],
    )
    def test_encode_rejects_malformed(self, bad):
        with pytest.raises(SerializationError):
            encode_resource(bad)

    @pytest.mark.parametrize(
        "bad", ["queue:1", "link:3", "link:3:0:1", "link:x:0", "", "inj"]
    )
    def test_decode_rejects_malformed(self, bad):
        with pytest.raises(SerializationError):
            decode_resource(bad)

    def test_utilization_round_trip_and_key_order(self):
        util = {("link", 10, 1): 0.5, ("inj", 2): 0.25, ("link", 2, 0): 0.75}
        encoded = encode_link_utilization(util)
        assert list(encoded) == sorted(encoded)
        assert decode_link_utilization(encoded) == util


class TestResultRoundTrip:
    def test_result_survives_json(self):
        result = _small_result()
        raw = json.loads(json.dumps(result_to_dict(result)))
        restored = result_from_dict(raw)
        assert restored == result

    def test_round_trip_is_canonically_stable(self):
        """to_dict → JSON → from_dict → to_dict is a fixed point: the
        determinism harness's byte-identity notion is well defined."""
        result = _small_result()
        once = result_to_dict(result)
        twice = result_to_dict(result_from_dict(json.loads(json.dumps(once))))
        assert canonical_json(once) == canonical_json(twice)

    def test_config_round_trip(self):
        config = SimConfig(num_vcs=2, deadlock_threshold=123)
        assert config_from_dict(config_to_dict(config)) == config

    def test_canonical_json_sorts_and_strips(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'


class TestDesignRoundTrip:
    """Lossless GeneratedDesign serialization (the synthesis-cell payload)."""

    @pytest.fixture(scope="class")
    def design(self):
        from repro.synthesis import generate_network
        from repro.workloads import benchmark

        pattern = benchmark("cg", 8).pattern
        return pattern, generate_network(pattern, seed=0)

    def test_round_trip_is_canonically_stable(self, design):
        pattern, generated = design
        raw = json.loads(json.dumps(design_to_dict(generated)))
        restored = design_from_dict(raw, pattern)
        assert canonical_json(design_to_dict(restored)) == canonical_json(
            design_to_dict(generated)
        )

    def test_round_trip_preserves_structure(self, design):
        pattern, generated = design
        restored = design_from_dict(design_to_dict(generated), pattern)
        assert restored.num_switches == generated.num_switches
        assert restored.num_links == generated.num_links
        assert restored.switch_map == generated.switch_map
        assert restored.pipe_links == generated.pipe_links
        assert restored.stats == generated.stats
        assert restored.seed == generated.seed
        assert (
            restored.certificate.contention_free
            == generated.certificate.contention_free
        )
        # Every route resolves to the same switch path.
        for comm in pattern.communications:
            assert (
                restored.topology.routing.route(comm).hops
                == generated.topology.routing.route(comm).hops
            )

    def test_partition_result_is_not_serialized(self, design):
        """The in-process PartitionResult does not survive the JSON
        round trip by design; the stats summary does."""
        pattern, generated = design
        assert generated.result is not None
        restored = design_from_dict(design_to_dict(generated), pattern)
        assert restored.result is None
        assert restored.stats.bisections == generated.result.bisections

    def test_pattern_name_mismatch_rejected(self, design):
        from repro.workloads import benchmark

        pattern, generated = design
        with pytest.raises(SerializationError, match="pattern"):
            design_from_dict(design_to_dict(generated), benchmark("mg", 8).pattern)


class TestLoadPointRoundTrip:
    def test_synthetic_point_survives_json(self):
        point = LoadPoint(
            offered_flits_per_node_cycle=0.3,
            accepted_flits_per_node_cycle=0.28,
            avg_latency=21.5,
            delivered=144,
            saturated=False,
            p50_latency=19,
            p95_latency=44,
            p99_latency=61,
        )
        raw = json.loads(json.dumps(loadpoint_to_dict(point)))
        assert loadpoint_from_dict(raw) == point

    def test_percentile_fields_serialized(self):
        raw = loadpoint_to_dict(LoadPoint(0.1, 0.09, 10.0, 5, False, 9, 12, 14))
        assert raw["p50_latency"] == 9
        assert raw["p95_latency"] == 12
        assert raw["p99_latency"] == 14

    def test_measured_point_round_trips(self):
        point = run_open_loop(
            mesh(2, 2), 0.2,
            warmup_cycles=100, measure_cycles=300, drain_cycles=300,
        )
        assert point.delivered > 0
        assert 0 < point.p50_latency <= point.p95_latency <= point.p99_latency
        raw = json.loads(json.dumps(loadpoint_to_dict(point)))
        restored = loadpoint_from_dict(raw)
        assert restored == point
        assert canonical_json(loadpoint_to_dict(restored)) == canonical_json(
            loadpoint_to_dict(point)
        )
