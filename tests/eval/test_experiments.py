"""Tests for the evaluation harness (on the cheap 8/9-node configs)."""

import pytest

from repro.eval import (
    BenchmarkSetup,
    cross_workload_table,
    figure7_rows,
    figure7_table,
    figure8_table,
    paper_sizes,
    prepare,
    run_performance,
)
from repro.eval.experiments import CrossWorkloadRow, Figure8Row
from repro.simulator import SimConfig


@pytest.fixture(scope="module")
def cg8():
    return prepare("cg", 8, seed=0)


class TestPaperSizes:
    def test_small_sizes(self):
        sizes = paper_sizes("small")
        assert sizes["bt"] == 9 and sizes["cg"] == 8

    def test_large_sizes(self):
        assert set(paper_sizes("large").values()) == {16}


class TestPrepare:
    def test_setup_is_cached(self, cg8):
        assert prepare("cg", 8, seed=0) is cg8

    def test_setup_has_all_baselines(self, cg8):
        assert set(cg8.baselines) == {"crossbar", "mesh", "torus"}

    def test_generated_design_satisfies_constraints(self, cg8):
        assert cg8.design.network.max_degree() <= 5

    def test_link_delays_for_each_kind(self, cg8):
        assert cg8.link_delays("mesh") is None
        torus_delays = cg8.link_delays("torus")
        assert torus_delays
        assert set(torus_delays.values()) <= {1, 2}
        gen_delays = cg8.link_delays("generated")
        assert all(d >= 1 for d in gen_delays.values())

    def test_torus_wrap_links_are_longer(self, cg8):
        # 4x2 torus: exactly the two x-wraparound links get delay 2.
        delays = cg8.link_delays("torus")
        assert sorted(delays.values()).count(2) == 2


class TestRunPerformance:
    def test_all_topologies_simulated(self, cg8):
        results = run_performance(cg8, config=SimConfig(max_cycles=5_000_000))
        assert set(results) == {"crossbar", "mesh", "torus", "generated"}
        sent = cg8.benchmark.program.total_messages
        for r in results.values():
            assert r.delivered_packets == sent

    def test_crossbar_is_never_beaten_significantly(self, cg8):
        """The non-blocking crossbar is the ideal network: nothing
        should beat it by more than scheduling noise."""
        results = run_performance(cg8, config=SimConfig(max_cycles=5_000_000))
        base = results["crossbar"].execution_cycles
        for kind, r in results.items():
            assert r.execution_cycles >= 0.98 * base, kind


class TestFigure7:
    def test_rows_cover_all_benchmarks(self):
        rows = figure7_rows("small", seed=0)
        assert {r.benchmark for r in rows} == {
            "bt-9", "cg-8", "fft-8", "mg-8", "sp-9"
        }

    def test_generated_cheaper_than_mesh(self):
        """The headline claim: generated networks use fewer resources."""
        for row in figure7_rows("small", seed=0):
            assert row.generated_switch_ratio < 1.0
            assert row.generated_link_ratio < 1.0

    def test_table_renders(self):
        text = figure7_table(figure7_rows("small", seed=0), "t")
        assert "cg-8" in text and "torus" in text


class TestTables:
    def test_figure8_table_renders(self):
        rows = [
            Figure8Row(
                benchmark="cg-8",
                num_processes=8,
                topology="mesh",
                execution_ratio=1.1,
                communication_ratio=1.3,
                execution_cycles=1000,
                avg_comm_cycles=10.0,
                deadlocks=0,
            )
        ]
        text = figure8_table(rows, "t")
        assert "1.100" in text and "mesh" in text

    def test_cross_workload_table_renders(self):
        rows = [
            CrossWorkloadRow(
                guest="fft-16", network="host", execution_cycles=123, degradation_vs_own=0.02
            )
        ]
        text = cross_workload_table(rows, "t")
        assert "+2.0%" in text
