"""Determinism harness: serial == parallel == cache-hit, byte for byte.

The golden fixture pins the canonical JSON of a small cg-8 grid under
fixed seeds.  Serial cold runs must reproduce it exactly; cache-hit and
process-pool runs must reproduce the serial payloads exactly.  Any
drift — float formatting, dict ordering, a simulation change — fails
here first.

Regenerate the fixture after an *intentional* simulation change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/eval/test_determinism.py -q
"""

import json
import os
from pathlib import Path

import pytest

from repro.eval.parallel import (
    PerformanceCell,
    ResilienceCell,
    ResultCache,
    SetupTask,
    prepare_setups,
    run_cells,
)
from repro.eval.resilience import run_resilience
from repro.eval.serialize import canonical_json
from repro.faults import CampaignSpec, build_campaign
from repro.simulator import SimConfig

GOLDEN_PATH = Path(__file__).parent / "golden" / "cg8_small_grid.json"
GOLDEN_KINDS = ("crossbar", "generated")


@pytest.fixture(scope="module")
def setup(tmp_path_factory):
    cache = ResultCache(tmp_path_factory.mktemp("setup-cache"))
    task = SetupTask("cg", 8, seed=0)
    return prepare_setups([task], cache=cache)[task]


def _grid_cells(setup, config=None):
    config = config or SimConfig()
    return [
        PerformanceCell(
            label=f"cg-8/{kind}",
            program=setup.benchmark.program,
            topology=setup.topology(kind),
            config=config,
            link_delays=setup.link_delays(kind),
        )
        for kind in GOLDEN_KINDS
    ]


def _payload_bytes(outcomes):
    return {o.label: canonical_json(o.payload) for o in outcomes}


class TestGoldenGrid:
    def test_serial_run_matches_golden(self, setup):
        outcomes = run_cells(_grid_cells(setup))
        got = _payload_bytes(outcomes)
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN_PATH.write_text(
                json.dumps(got, indent=2, sort_keys=True) + "\n", encoding="utf-8"
            )
            pytest.skip(f"regenerated {GOLDEN_PATH}")
        golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        assert got == golden

    def test_cache_hit_is_byte_identical(self, setup, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cells = _grid_cells(setup)
        cold = run_cells(cells, cache=cache)
        warm = run_cells(cells, cache=cache)
        assert all(not o.cache_hit for o in cold)
        assert all(o.cache_hit for o in warm)
        assert _payload_bytes(cold) == _payload_bytes(warm)

    @pytest.mark.slow
    def test_parallel_run_is_byte_identical(self, setup):
        cells = _grid_cells(setup)
        serial = run_cells(cells, jobs=1)
        parallel = run_cells(cells, jobs=2)
        assert _payload_bytes(serial) == _payload_bytes(parallel)
        assert [o.label for o in parallel] == [o.label for o in serial]

    def test_no_cache_and_cache_agree(self, setup, tmp_path):
        cells = _grid_cells(setup)
        uncached = run_cells(cells, cache=None)
        cached = run_cells(cells, cache=ResultCache(tmp_path / "c"))
        assert _payload_bytes(uncached) == _payload_bytes(cached)


class TestCacheKeys:
    def test_key_is_stable_per_cell(self, setup):
        a, b = _grid_cells(setup), _grid_cells(setup)
        assert [c.key() for c in a] == [c.key() for c in b]

    def test_key_distinguishes_cells(self, setup):
        keys = [c.key() for c in _grid_cells(setup)]
        assert len(set(keys)) == len(keys)

    def test_key_invalidates_on_config_change(self, setup):
        base = _grid_cells(setup)[0]
        changed = _grid_cells(setup, SimConfig(num_vcs=2))[0]
        assert base.key() != changed.key()

    def test_resilience_keys_depend_on_scenario(self, setup):
        topology = setup.topology("generated")
        common = dict(
            program=setup.benchmark.program,
            topology=topology,
            config=SimConfig(),
            link_delays=setup.link_delays("generated"),
        )
        baseline = ResilienceCell(label="b", scenario=None, **common)
        scenarios = build_campaign(
            topology.network, CampaignSpec(kinds=("link",), max_scenarios=2)
        )
        keys = {baseline.key()}
        for s in scenarios:
            keys.add(ResilienceCell(label="s", scenario=s, **common).key())
        assert len(keys) == 1 + len(scenarios)

    def test_corrupt_cache_entry_is_a_miss(self, setup, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cell = _grid_cells(setup)[0]
        cold = run_cells([cell], cache=cache)
        path = cache.results_dir / f"{cold[0].key}.json"
        path.write_text("{ not json", encoding="utf-8")
        redone = run_cells([cell], cache=cache)
        assert not redone[0].cache_hit
        assert _payload_bytes(redone) == _payload_bytes(cold)


class TestResilienceDeterminism:
    @pytest.mark.slow
    def test_parallel_campaign_matches_serial(self, setup, tmp_path):
        """A small transient-fault campaign: serial, parallel, and a
        cache-hit replay all produce the identical report."""
        topology = setup.topology("generated")
        campaign = build_campaign(
            topology.network,
            CampaignSpec(kinds=("link",), max_scenarios=3, start=3000, end=3800),
        )
        kwargs = dict(
            config=SimConfig(),
            link_delays=setup.link_delays("generated"),
        )
        serial = run_resilience(
            setup.benchmark.program, topology, campaign, **kwargs
        )
        cache = ResultCache(tmp_path / "cache")
        parallel = run_resilience(
            setup.benchmark.program, topology, campaign, jobs=2, cache=cache, **kwargs
        )
        replay = run_resilience(
            setup.benchmark.program, topology, campaign, cache=cache, **kwargs
        )
        assert parallel == serial
        assert replay == serial
