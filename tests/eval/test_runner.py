"""Unit tests for the evaluation runner's cross-workload orchestration."""

import pytest

from repro.eval import prepare, run_cross_workload
from repro.simulator import SimConfig


@pytest.fixture(scope="module")
def host():
    return prepare("cg", 8, seed=0)


@pytest.fixture(scope="module")
def guest():
    return prepare("fft", 8, seed=0)


class TestCrossWorkload:
    def test_returns_three_results(self, host, guest):
        results = run_cross_workload(
            host, guest, config=SimConfig(max_cycles=20_000_000)
        )
        assert set(results) == {"own", "host", "mesh"}

    def test_guest_program_runs_everywhere(self, host, guest):
        results = run_cross_workload(
            host, guest, config=SimConfig(max_cycles=20_000_000)
        )
        expected = guest.benchmark.program.total_messages
        for name, r in results.items():
            assert r.delivered_packets == expected, name

    def test_own_network_is_at_least_as_good_as_foreign(self, host, guest):
        results = run_cross_workload(
            host, guest, config=SimConfig(max_cycles=20_000_000)
        )
        # A network designed for the guest never loses badly to a
        # foreign one; allow small scheduling noise.
        assert results["own"].execution_cycles <= 1.05 * results["host"].execution_cycles
