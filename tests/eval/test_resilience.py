"""Resilience campaigns: repair-or-disconnect, transient recovery.

These are the subsystem's acceptance tests: a permanent link failure on
a minimal generated network must resolve to either a successful route
repair or a reported disconnection (never a hang), and transient
failures must recover through retransmission with every message
delivered.
"""

import pytest

from repro.eval import prepare, program_pairs, resilience_table, run_resilience
from repro.faults import FaultScenario, LinkFault, single_link_scenarios
from repro.model import Communication
from repro.simulator import SimConfig
from repro.workloads import benchmark


@pytest.fixture(scope="module")
def setup():
    return prepare("cg", 8, seed=0)


def _single_link_report(setup, kind, **kw):
    topology = setup.topology(kind)
    return run_resilience(
        setup.benchmark.program,
        topology,
        single_link_scenarios(topology.network),
        link_delays=setup.link_delays(kind),
        **kw,
    )


class TestProgramPairs:
    def test_pairs_are_distinct_and_sorted(self):
        pairs = program_pairs(benchmark("cg", 8).program)
        assert pairs == tuple(sorted(set(pairs)))
        assert all(isinstance(p, Communication) for p in pairs)
        assert pairs  # cg actually communicates


class TestPermanentFaults:
    def test_minimal_generated_network_repairs_or_disconnects(self, setup):
        # The acceptance scenario: the generated network is minimal, so
        # a permanent single-link failure must resolve — repaired routes
        # that deliver everything, or a first-class disconnection report.
        # The test finishing at all is the never-hangs half.
        report = _single_link_report(setup, "generated")
        assert report.num_scenarios == len(setup.topology("generated").network.links)
        for outcome in report.outcomes:
            assert outcome.status in ("ok", "disconnected")
            if outcome.status == "ok":
                assert outcome.delivered_fraction == 1.0
                assert outcome.inflation is not None
                assert outcome.inflation >= 1.0
            else:
                assert outcome.disconnected_pairs > 0
                assert outcome.delivered_fraction < 1.0
                assert outcome.execution_cycles is None

    def test_campaign_is_deterministic(self, setup):
        first = _single_link_report(setup, "generated")
        second = _single_link_report(setup, "generated")
        assert first.outcomes == second.outcomes
        assert first.baseline.execution_cycles == second.baseline.execution_cycles

    def test_report_renders(self, setup):
        report = _single_link_report(setup, "generated")
        text = resilience_table(report, "generated single-link")
        assert "scenario" in text and "status" in text
        assert report.summary() in text


class TestTransientFaults:
    def test_transient_fault_recovers_with_full_delivery(self, setup):
        # A long outage on a busy mesh link with a tight deadlock
        # threshold: packets stalled at the dead link time out, regress,
        # and retransmit until the link heals — then everything lands.
        topology = setup.topology("mesh")
        scenario = FaultScenario.of(LinkFault(0, start=0, end=5_000))
        report = run_resilience(
            setup.benchmark.program,
            topology,
            [scenario],
            config=SimConfig(deadlock_threshold=100),
            link_delays=setup.link_delays("mesh"),
        )
        (outcome,) = report.outcomes
        assert outcome.status == "ok"
        assert outcome.delivered_fraction == 1.0
        assert outcome.retransmissions >= 1
        # Transient faults are not routed around — the repair pass left
        # the table alone so retransmission is what saved the run.
        assert outcome.rerouted_pairs == 0
        assert outcome.inflation > 1.0
