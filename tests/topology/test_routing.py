"""Unit tests for routing functions (Definition 6)."""

import pytest

from repro.errors import RoutingError
from repro.model import Communication
from repro.topology import (
    DimensionOrderRouting,
    Network,
    ShortestPathRouting,
    TableRouting,
    check_routes_valid,
    crossbar,
    make_route,
    mesh,
    torus,
)


def _line_network(n_switches=3):
    """Switch chain S0-S1-...; processor i on switch i."""
    net = Network(n_switches)
    switches = [net.add_switch() for _ in range(n_switches)]
    for p, s in enumerate(switches):
        net.attach_processor(p, s)
    for u, v in zip(switches, switches[1:]):
        net.add_link(u, v)
    return net, switches


class TestMakeRoute:
    def test_route_resources_include_endpoints(self):
        net, sw = _line_network()
        r = make_route(net, Communication(0, 2), sw)
        assert ("inj", 0) in r.resources
        assert ("ej", 2) in r.resources
        assert r.num_hops == 2

    def test_route_records_directed_hops(self):
        net, sw = _line_network()
        fwd = make_route(net, Communication(0, 2), sw)
        bwd = make_route(net, Communication(2, 0), list(reversed(sw)))
        # Full-duplex: opposite directions are distinct resources.
        assert not (set(fwd.hops) & set(bwd.hops))

    def test_wrong_start_switch_rejected(self):
        net, sw = _line_network()
        with pytest.raises(RoutingError):
            make_route(net, Communication(0, 2), [sw[1], sw[2]])

    def test_missing_link_rejected(self):
        net, sw = _line_network()
        with pytest.raises(RoutingError):
            make_route(net, Communication(0, 2), [sw[0], sw[2]])

    def test_link_choice_pins_parallel_link(self):
        net, sw = _line_network(2)
        extra = net.add_link(sw[0], sw[1])
        r = make_route(net, Communication(0, 1), sw[:2], link_choices={0: extra})
        assert r.link_ids == (extra,)

    def test_bad_link_choice_rejected(self):
        net, sw = _line_network(3)
        with pytest.raises(RoutingError):
            make_route(net, Communication(0, 1), sw[:2], link_choices={0: 999})


class TestTableRouting:
    def test_lookup_and_footprint(self):
        net, sw = _line_network()
        r = make_route(net, Communication(0, 2), sw)
        table = TableRouting([r])
        assert table.route(Communication(0, 2)) is r
        assert table(Communication(0, 2)) == r.resources

    def test_missing_route_raises(self):
        table = TableRouting([])
        with pytest.raises(RoutingError):
            table.route(Communication(0, 1))

    def test_duplicate_route_rejected(self):
        net, sw = _line_network()
        r = make_route(net, Communication(0, 2), sw)
        with pytest.raises(RoutingError):
            TableRouting([r, r])

    def test_iteration_and_len(self):
        net, sw = _line_network()
        r = make_route(net, Communication(0, 2), sw)
        table = TableRouting([r])
        assert len(table) == 1
        assert list(table) == [r]
        assert table.has_route(Communication(0, 2))


class TestShortestPathRouting:
    def test_routes_over_shortest_path(self):
        net, sw = _line_network(4)
        routing = ShortestPathRouting(net)
        assert routing.route(Communication(0, 3)).num_hops == 3

    def test_same_switch_routes_have_no_hops(self):
        top = crossbar(4)
        r = top.routing.route(Communication(1, 3))
        assert r.num_hops == 0
        assert r.resources == {("inj", 1), ("ej", 3)}

    def test_routes_are_deterministic_and_cached(self):
        net, sw = _line_network(4)
        routing = ShortestPathRouting(net)
        assert routing.route(Communication(0, 3)) is routing.route(Communication(0, 3))

    def test_validation_accepts_all_pairs(self):
        net, sw = _line_network(4)
        routing = ShortestPathRouting(net)
        comms = [Communication(i, j) for i in range(4) for j in range(4) if i != j]
        check_routes_valid(net, routing, comms)


class TestDimensionOrderRouting:
    def test_mesh_xy_route_goes_x_first(self):
        top = mesh(4, 4)
        # processor 0 at (0,0) to processor 15 at (3,3).
        r = top.routing.route(Communication(0, 15))
        xs = [top.coords[s][0] for s in r.switch_path]
        ys = [top.coords[s][1] for s in r.switch_path]
        assert xs == [0, 1, 2, 3, 3, 3, 3]
        assert ys == [0, 0, 0, 0, 1, 2, 3]

    def test_mesh_route_lengths_are_manhattan(self):
        top = mesh(4, 4)
        for s, d in [(0, 5), (3, 12), (6, 9)]:
            r = top.routing.route(Communication(s, d))
            sx, sy = top.coords[top.network.switch_of(s)]
            dx, dy = top.coords[top.network.switch_of(d)]
            assert r.num_hops == abs(sx - dx) + abs(sy - dy)

    def test_torus_takes_wraparound_shortcut(self):
        top = torus(4, 4)
        # (0,0) -> (3,0) is one hop through the wraparound link.
        r = top.routing.route(Communication(0, 3))
        assert r.num_hops == 1

    def test_torus_tie_goes_positive(self):
        top = torus(4, 4)
        # (0,0) -> (2,0): distance 2 both ways; positive direction wins.
        r = top.routing.route(Communication(0, 2))
        path_x = [top.coords[s][0] for s in r.switch_path]
        assert path_x == [0, 1, 2]

    def test_all_mesh_routes_validate(self):
        top = mesh(3, 3)
        comms = [Communication(i, j) for i in range(9) for j in range(9) if i != j]
        check_routes_valid(top.network, top.routing, comms)

    def test_all_torus_routes_validate(self):
        top = torus(4, 2)
        comms = [Communication(i, j) for i in range(8) for j in range(8) if i != j]
        check_routes_valid(top.network, top.routing, comms)
