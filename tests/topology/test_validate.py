"""Tests for routing/topology validation helpers."""

import pytest

from repro.errors import RoutingError, TopologyError
from repro.model import Communication
from repro.topology import (
    Network,
    Route,
    TableRouting,
    check_routes_valid,
    degree_report,
    make_route,
    mesh,
    require_connected,
)


def _line():
    net = Network(3)
    switches = [net.add_switch() for _ in range(3)]
    for p, s in enumerate(switches):
        net.attach_processor(p, s)
    net.add_link(switches[0], switches[1])
    net.add_link(switches[1], switches[2])
    return net, switches


class TestDegreeReport:
    def test_satisfied_mesh(self):
        report = degree_report(mesh(4, 4).network, max_degree=5)
        assert report.satisfied
        assert report.violators == ()

    def test_violators_listed(self):
        report = degree_report(mesh(4, 4).network, max_degree=4)
        assert not report.satisfied
        # The four interior switches have degree 5.
        assert len(report.violators) == 4


class TestRequireConnected:
    def test_connected_passes(self):
        net, _ = _line()
        require_connected(net)

    def test_disconnected_raises(self):
        net = Network(2)
        a, b = net.add_switch(), net.add_switch()
        net.attach_processor(0, a)
        net.attach_processor(1, b)
        with pytest.raises(TopologyError):
            require_connected(net)


class TestCheckRoutesValid:
    def test_valid_table_passes(self):
        net, sw = _line()
        table = TableRouting([make_route(net, Communication(0, 2), sw)])
        check_routes_valid(net, table, [Communication(0, 2)])

    def test_revisiting_route_rejected(self):
        net, sw = _line()
        good = make_route(net, Communication(0, 2), sw)
        # Forge a route that revisits a switch.
        bad = Route(
            comm=good.comm,
            switch_path=(sw[0], sw[1], sw[0], sw[1], sw[2]),
            hops=good.hops,
            resources=good.resources,
        )
        table = TableRouting([bad])
        with pytest.raises(RoutingError):
            check_routes_valid(net, table, [Communication(0, 2)])

    def test_hop_count_mismatch_rejected(self):
        net, sw = _line()
        good = make_route(net, Communication(0, 2), sw)
        bad = Route(
            comm=good.comm,
            switch_path=good.switch_path,
            hops=good.hops[:1],
            resources=good.resources,
        )
        with pytest.raises(RoutingError):
            check_routes_valid(net, TableRouting([bad]), [Communication(0, 2)])

    def test_wrong_direction_rejected(self):
        net, sw = _line()
        good = make_route(net, Communication(0, 2), sw)
        flipped = tuple(
            ("link", link_id, 1 - direction) for _, link_id, direction in good.hops
        )
        bad = Route(
            comm=good.comm,
            switch_path=good.switch_path,
            hops=flipped,
            resources=good.resources,
        )
        with pytest.raises(RoutingError):
            check_routes_valid(net, TableRouting([bad]), [Communication(0, 2)])

    def _corrupted(self, hops):
        net, sw = _line()
        good = make_route(net, Communication(0, 2), sw)
        bad = Route(
            comm=good.comm,
            switch_path=good.switch_path,
            hops=hops(good.hops),
            resources=good.resources,
        )
        return net, TableRouting([bad])

    def test_nonexistent_link_rejected(self):
        # Regression: a route claiming a link id the network never
        # allocated used to pass validation (the walk-consistency check
        # crashed only later, inside the simulator).
        net, table = self._corrupted(
            lambda hops: (("link", 999, 0),) + hops[1:]
        )
        with pytest.raises(RoutingError, match="link 999 which does not exist"):
            check_routes_valid(net, table, [Communication(0, 2)])

    def test_malformed_hop_rejected(self):
        net, table = self._corrupted(
            lambda hops: (("inj", 0),) + hops[1:]
        )
        with pytest.raises(RoutingError, match="malformed hop"):
            check_routes_valid(net, table, [Communication(0, 2)])

    def test_invalid_direction_rejected(self):
        net, table = self._corrupted(
            lambda hops: ((hops[0][0], hops[0][1], 7),) + hops[1:]
        )
        with pytest.raises(RoutingError, match="invalid direction"):
            check_routes_valid(net, table, [Communication(0, 2)])
