"""Tests for the fat-tree baseline topology."""

import pytest

from repro.errors import TopologyError
from repro.model import Communication
from repro.topology import check_routes_valid, fat_tree


class TestStructure:
    def test_sixteen_node_default(self):
        top = fat_tree(16)
        # 4 leaves + 2 spines; every leaf linked to every spine.
        assert top.network.num_switches == 6
        assert top.network.num_links == 8

    def test_leaf_degree(self):
        top = fat_tree(16, leaf_size=4, num_spines=2)
        for p in range(16):
            leaf = top.network.switch_of(p)
            assert top.network.degree(leaf) == 4 + 2

    def test_spine_degree(self):
        top = fat_tree(16, leaf_size=4, num_spines=2)
        leaves = {top.network.switch_of(p) for p in range(16)}
        spines = set(top.network.switches) - leaves
        assert len(spines) == 2
        for s in spines:
            assert top.network.degree(s) == 4  # one link per leaf

    def test_uneven_last_leaf(self):
        top = fat_tree(10, leaf_size=4, num_spines=2)
        assert top.network.num_switches == 3 + 2
        top.network.validate()

    def test_single_leaf_rejected(self):
        with pytest.raises(TopologyError):
            fat_tree(4, leaf_size=8)

    def test_bad_params_rejected(self):
        with pytest.raises(TopologyError):
            fat_tree(16, leaf_size=0)
        with pytest.raises(TopologyError):
            fat_tree(1)


class TestRouting:
    def test_intra_leaf_routes_stay_local(self):
        top = fat_tree(16)
        r = top.routing.route(Communication(0, 1))
        assert r.num_hops == 0

    def test_inter_leaf_routes_go_up_and_down(self):
        top = fat_tree(16)
        r = top.routing.route(Communication(0, 15))
        assert r.num_hops == 2
        assert len(r.switch_path) == 3

    def test_spine_choice_spreads_flows(self):
        top = fat_tree(16, num_spines=2)
        spine_of = {}
        for dst in (4, 5):
            path = top.routing.route(Communication(0, dst)).switch_path
            spine_of[dst] = path[1]
        # (0+4) % 2 != (0+5) % 2: different spines.
        assert spine_of[4] != spine_of[5]

    def test_all_routes_valid(self):
        top = fat_tree(12, leaf_size=4, num_spines=3)
        comms = [
            Communication(i, j) for i in range(12) for j in range(12) if i != j
        ]
        check_routes_valid(top.network, top.routing, comms)

    def test_simulates(self):
        from repro.simulator import SimConfig, simulate
        from repro.workloads import PhaseProgramBuilder

        b = PhaseProgramBuilder(16, "ft")
        b.phase([(i, (i + 5) % 16, 128) for i in range(16)])
        result = simulate(b.build(), fat_tree(16), SimConfig(max_cycles=2_000_000))
        assert result.delivered_packets == 16
