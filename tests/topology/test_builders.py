"""Unit tests for reference topology builders."""

import pytest

from repro.errors import TopologyError
from repro.topology import (
    crossbar,
    fully_connected,
    grid_dims,
    mesh,
    mesh_for,
    ring,
    torus,
    torus_for,
)


class TestGridDims:
    @pytest.mark.parametrize(
        "n,expected",
        [(8, (4, 2)), (9, (3, 3)), (16, (4, 4)), (12, (4, 3)), (7, (7, 1)), (1, (1, 1))],
    )
    def test_near_square_factorization(self, n, expected):
        assert grid_dims(n) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(TopologyError):
            grid_dims(0)


class TestMesh:
    def test_4x4_counts(self):
        top = mesh(4, 4)
        assert top.network.num_switches == 16
        assert top.network.num_links == 24  # 2 * 4 * 3
        assert top.network.max_degree() == 5  # centre switch: 1 proc + 4 links

    def test_3x3_counts(self):
        top = mesh(3, 3)
        assert top.network.num_switches == 9
        assert top.network.num_links == 12

    def test_one_processor_per_switch(self):
        top = mesh(4, 2)
        for p in range(8):
            assert top.network.processors_of(top.network.switch_of(p)) == {p}

    def test_validates(self):
        mesh(4, 4).network.validate()

    def test_rejects_bad_dims(self):
        with pytest.raises(TopologyError):
            mesh(0, 4)


class TestTorus:
    def test_4x4_has_double_link_count_shape(self):
        # 4x4 torus: 32 links (mesh 24 + 8 wraparound).
        top = torus(4, 4)
        assert top.network.num_links == 32

    def test_wraparound_skipped_on_extent_two(self):
        # A 4x2 torus adds x wraparounds only: y extent 2 already links
        # the two rows directly.
        top = torus(4, 2)
        mesh_links = mesh(4, 2).network.num_links
        assert top.network.num_links == mesh_links + 2

    def test_degrees(self):
        top = torus(4, 4)
        for s in top.network.switches:
            assert top.network.degree(s) == 5  # 1 proc + 4 links


class TestCrossbar:
    def test_single_megaswitch(self):
        top = crossbar(16)
        assert top.network.num_switches == 1
        assert top.network.num_links == 0
        assert top.network.degree(0) == 16

    def test_validates(self):
        crossbar(8).network.validate()


class TestRing:
    def test_link_count_equals_node_count(self):
        top = ring(8)
        assert top.network.num_links == 8

    def test_rejects_tiny_ring(self):
        with pytest.raises(TopologyError):
            ring(2)


class TestFullyConnected:
    def test_link_count_is_all_pairs(self):
        top = fully_connected(6)
        assert top.network.num_links == 15

    def test_every_route_is_at_most_one_hop(self):
        from repro.model import Communication

        top = fully_connected(5)
        for i in range(5):
            for j in range(5):
                if i != j:
                    assert top.routing.route(Communication(i, j)).num_hops == 1


class TestForHelpers:
    def test_mesh_for_uses_near_square(self):
        assert mesh_for(8).name == "mesh-4x2"
        assert mesh_for(9).name == "mesh-3x3"
        assert torus_for(16).name == "torus-4x4"
