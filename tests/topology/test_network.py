"""Unit tests for the Network system graph."""

import pytest

from repro.errors import TopologyError
from repro.topology import Network, ejection_resource, injection_resource


def _two_switch_net():
    net = Network(4)
    a = net.add_switch()
    b = net.add_switch()
    for p, s in [(0, a), (1, a), (2, b), (3, b)]:
        net.attach_processor(p, s)
    return net, a, b


class TestConstruction:
    def test_rejects_zero_processors(self):
        with pytest.raises(TopologyError):
            Network(0)

    def test_add_switch_assigns_sequential_ids(self):
        net = Network(2)
        assert net.add_switch() == 0
        assert net.add_switch() == 1

    def test_attach_processor_out_of_range(self):
        net = Network(2)
        s = net.add_switch()
        with pytest.raises(TopologyError):
            net.attach_processor(5, s)

    def test_attach_processor_twice_fails(self):
        net = Network(2)
        s = net.add_switch()
        net.attach_processor(0, s)
        with pytest.raises(TopologyError):
            net.attach_processor(0, s)

    def test_attach_to_missing_switch_fails(self):
        net = Network(2)
        with pytest.raises(TopologyError):
            net.attach_processor(0, 99)

    def test_self_loop_link_rejected(self):
        net = Network(1)
        s = net.add_switch()
        with pytest.raises(TopologyError):
            net.add_link(s, s)


class TestLinks:
    def test_parallel_links_allowed(self):
        net, a, b = _two_switch_net()
        l1 = net.add_link(a, b)
        l2 = net.add_link(a, b)
        assert l1 != l2
        assert net.links_between(a, b) == (l1, l2)

    def test_remove_link(self):
        net, a, b = _two_switch_net()
        l1 = net.add_link(a, b)
        l2 = net.add_link(a, b)
        net.remove_link(l1)
        assert net.links_between(a, b) == (l2,)
        net.remove_link(l2)
        assert net.links_between(a, b) == ()
        assert b not in net.neighbors(a)

    def test_link_other_and_direction(self):
        net, a, b = _two_switch_net()
        lid = net.add_link(a, b)
        link = net.link(lid)
        assert link.other(a) == b
        assert link.other(b) == a
        assert link.direction_from(a) == 0
        assert link.direction_from(b) == 1
        assert link.resource(a) != link.resource(b)

    def test_link_resource_of_non_endpoint_fails(self):
        net, a, b = _two_switch_net()
        c = net.add_switch()
        lid = net.add_link(a, b)
        with pytest.raises(TopologyError):
            net.link(lid).resource(c)

    def test_missing_link_lookup(self):
        net = Network(1)
        with pytest.raises(TopologyError):
            net.link(0)


class TestDegree:
    def test_degree_counts_processors_and_links(self):
        net, a, b = _two_switch_net()
        net.add_link(a, b)
        net.add_link(a, b)
        # a: 2 processors + 2 link ports.
        assert net.degree(a) == 4
        assert net.degree(b) == 4
        assert net.max_degree() == 4

    def test_crossbar_degree_is_processor_count(self):
        net = Network(5)
        s = net.add_switch()
        for p in range(5):
            net.attach_processor(p, s)
        assert net.degree(s) == 5


class TestValidation:
    def test_validate_passes_for_complete_network(self):
        net, a, b = _two_switch_net()
        net.add_link(a, b)
        net.validate()

    def test_validate_rejects_unattached_processor(self):
        net = Network(2)
        s = net.add_switch()
        net.attach_processor(0, s)
        with pytest.raises(TopologyError):
            net.validate()

    def test_validate_rejects_disconnected_switches(self):
        net, a, b = _two_switch_net()
        with pytest.raises(TopologyError):
            net.validate()

    def test_is_connected_single_switch(self):
        net = Network(1)
        net.add_switch()
        assert net.is_connected()


class TestCopy:
    def test_copy_is_independent(self):
        net, a, b = _two_switch_net()
        net.add_link(a, b)
        dup = net.copy()
        dup.add_link(a, b)
        assert net.num_links == 1
        assert dup.num_links == 2

    def test_copy_preserves_attachments(self):
        net, a, b = _two_switch_net()
        dup = net.copy()
        assert dup.switch_of(2) == b
        assert dup.processors_of(a) == {0, 1}


class TestResources:
    def test_injection_and_ejection_are_distinct(self):
        assert injection_resource(3) != ejection_resource(3)
        assert injection_resource(3) != injection_resource(4)

    def test_describe_mentions_every_switch(self):
        net, a, b = _two_switch_net()
        net.add_link(a, b)
        text = net.describe()
        assert f"S{a}" in text and f"S{b}" in text
