"""End-to-end tests of generate_network: concrete networks, routing
tables and the Theorem 1 certificate."""

import pytest

from repro.errors import SynthesisError
from repro.model import CliqueAnalysis, Communication, check_contention_free
from repro.synthesis import DesignConstraints, generate_network
from repro.topology import check_routes_valid

from tests.fixtures import figure1_pattern, pattern_from_phases


class TestGenerateNetworkOnFigure1:
    @pytest.fixture(scope="class")
    def design(self):
        return generate_network(figure1_pattern(), seed=0, restarts=3)

    def test_network_validates(self, design):
        design.network.validate()

    def test_degree_constraint_met(self, design):
        assert design.network.max_degree() <= 5

    def test_contention_free_certificate(self, design):
        """Theorem 1 holds by construction on the design pattern."""
        assert design.certificate.contention_free

    def test_routes_valid_on_network(self, design):
        check_routes_valid(
            design.network, design.topology.routing, design.pattern.communications
        )

    def test_fewer_resources_than_mesh(self, design):
        # 4x4 mesh: 16 switches, 24 links.
        assert design.num_switches < 16
        assert design.num_links < 24

    def test_fallback_routing_covers_alien_communications(self, design):
        alien = Communication(0, 15)
        assert alien not in design.pattern.communications or True
        route = design.topology.routing.route(alien)
        assert route.switch_path[0] == design.network.switch_of(0)
        assert route.switch_path[-1] == design.network.switch_of(15)

    def test_parallel_links_are_pinned_by_color(self, design):
        """Communications conflicting in time on the same pipe must use
        different parallel links."""
        analysis = design.analysis
        routing = design.topology.routing
        for clique in analysis.max_cliques:
            used = {}
            for comm in clique:
                for hop in routing.route(comm).hops:
                    assert hop not in used, (
                        f"{comm} and {used[hop]} share directed link {hop} "
                        "despite conflicting in time"
                    )
                    used[hop] = comm


class TestGenerateNetworkSmall:
    def test_trivial_pattern_keeps_megaswitch(self):
        pattern = pattern_from_phases([[(0, 1), (2, 3)]], num_processes=4)
        design = generate_network(pattern, seed=0, restarts=1)
        assert design.num_switches == 1
        assert design.num_links == 0

    def test_disconnected_groups_get_joined(self):
        # Two groups that never talk: generated switch graph must still
        # be connected (Definition 1).
        pattern = pattern_from_phases(
            [
                [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)],
                [(1, 0), (2, 1), (0, 2), (4, 3), (5, 4), (3, 5)],
            ],
            num_processes=6,
        )
        design = generate_network(
            pattern, constraints=DesignConstraints(max_degree=4), seed=0
        )
        design.network.validate()
        assert design.network.is_connected()

    def test_restart_count_validation(self):
        with pytest.raises(SynthesisError):
            generate_network(figure1_pattern(), restarts=0)

    def test_infeasible_constraints_raise_with_context(self):
        pattern = pattern_from_phases(
            [[(0, 1), (1, 2), (2, 3), (3, 0)], [(0, 2), (1, 3)]],
            num_processes=4,
        )
        with pytest.raises(SynthesisError):
            generate_network(
                pattern, constraints=DesignConstraints(max_degree=2), seed=0
            )

    def test_certificate_matches_independent_check(self):
        pattern = figure1_pattern()
        design = generate_network(pattern, seed=2, restarts=2)
        cert = check_contention_free(pattern, design.topology.routing)
        assert cert.contention_free == design.certificate.contention_free


class TestRestarts:
    def test_more_restarts_never_worse(self):
        pattern = figure1_pattern()
        one = generate_network(pattern, seed=0, restarts=1)
        many = generate_network(pattern, seed=0, restarts=5)
        assert many.num_links <= one.num_links
