"""Tests for the mutable synthesis state."""

import random

import pytest

from repro.errors import SynthesisError
from repro.model import CliqueAnalysis, Communication
from repro.synthesis import SynthesisState, normalize_path

from tests.fixtures import figure1_pattern, pattern_from_phases


def _c(s, d):
    return Communication(s, d)


def _small_state():
    """Four processors, two phases: a ring phase and a pairs phase."""
    pattern = pattern_from_phases(
        [[(0, 1), (1, 2), (2, 3), (3, 0)], [(0, 2), (1, 3)]],
        num_processes=4,
        name="small",
    )
    return SynthesisState.initial(CliqueAnalysis.of(pattern))


class TestNormalizePath:
    def test_identity_on_simple_path(self):
        assert normalize_path([1, 2, 3]) == (1, 2, 3)

    def test_collapses_consecutive_duplicates(self):
        assert normalize_path([1, 1, 2, 2]) == (1, 2)

    def test_splices_out_loops(self):
        assert normalize_path([1, 2, 3, 2, 4]) == (1, 2, 4)

    def test_cuts_back_to_first_occurrence(self):
        assert normalize_path([5, 1, 2, 5, 3]) == (5, 3)


class TestInitialState:
    def test_megaswitch_holds_everyone(self):
        state = _small_state()
        assert state.switches == (0,)
        assert state.switch_procs[0] == {0, 1, 2, 3}

    def test_all_routes_are_internal(self):
        state = _small_state()
        for comm in state.comms:
            assert state.route_of(comm) == (0,)

    def test_no_pipes_initially(self):
        state = _small_state()
        assert state.pipes() == ()
        assert state.total_links() == 0


class TestSetRoute:
    def test_pipe_membership_tracks_routes(self):
        state = _small_state()
        sj = state.split_switch(0, random.Random(0))
        moved = sorted(state.switch_procs[sj])
        # Some communication crosses the split; its route uses the pipe.
        crossing = [
            c
            for c in state.comms
            if (c.source in moved) != (c.dest in moved)
        ]
        assert crossing
        for c in crossing:
            path = state.route_of(c)
            assert len(path) == 2
            assert c in state.pipe_forward(path[0], path[1])

    def test_set_route_rejects_wrong_endpoints(self):
        state = _small_state()
        state.split_switch(0, random.Random(0))
        comm = state.comms[0]
        with pytest.raises(SynthesisError):
            state.set_route(comm, (99,))

    def test_set_route_updates_pipe_sets(self):
        state = _small_state()
        sj = state.split_switch(0, random.Random(0))
        crossing = next(
            c
            for c in state.comms
            if len(state.route_of(c)) == 2
        )
        old = state.route_of(comm := crossing)
        # Detour is impossible with two switches, so re-set the same
        # route and confirm idempotence.
        state.set_route(comm, old)
        assert state.route_of(comm) == old


class TestSplitSwitch:
    def test_split_moves_half(self):
        state = _small_state()
        sj = state.split_switch(0, random.Random(7))
        assert len(state.switch_procs[0]) == 2
        assert len(state.switch_procs[sj]) == 2

    def test_split_rejects_single_processor_switch(self):
        pattern = pattern_from_phases([[(0, 1)]], num_processes=2)
        state = SynthesisState.initial(CliqueAnalysis.of(pattern))
        state.split_switch(0, random.Random(0))
        for s in state.switches:
            if len(state.switch_procs[s]) == 1:
                with pytest.raises(SynthesisError):
                    state.split_switch(s, random.Random(0))

    def test_routes_remain_anchored_after_split(self):
        state = SynthesisState.initial(CliqueAnalysis.of(figure1_pattern()))
        state.split_switch(0, random.Random(3))
        for comm in state.comms:
            path = state.route_of(comm)
            assert path[0] == state.switch_of(comm.source)
            assert path[-1] == state.switch_of(comm.dest)
            assert len(set(path)) == len(path)

    def test_estimated_degree_counts_procs_and_pipes(self):
        state = _small_state()
        sj = state.split_switch(0, random.Random(0))
        est = state.pipe_estimate(0, sj)
        assert state.estimated_degree(0) == 2 + est
        assert est >= 1


class TestMoveProcessor:
    def test_move_reanchors_routes(self):
        state = _small_state()
        sj = state.split_switch(0, random.Random(0))
        p = sorted(state.switch_procs[0])[0]
        state.move_processor(p, sj)
        assert state.switch_of(p) == sj
        for comm in state.comms:
            if p in (comm.source, comm.dest):
                path = state.route_of(comm)
                assert path[0] == state.switch_of(comm.source)
                assert path[-1] == state.switch_of(comm.dest)

    def test_move_to_same_switch_is_noop(self):
        state = _small_state()
        before = state.snapshot()
        state.move_processor(0, 0)
        assert state.routes == before.routes

    def test_move_to_unknown_switch_fails(self):
        state = _small_state()
        with pytest.raises(SynthesisError):
            state.move_processor(0, 42)


class TestSnapshotRestore:
    def test_restore_round_trip(self):
        state = _small_state()
        snap = state.snapshot()
        sj = state.split_switch(0, random.Random(1))
        state.move_processor(sorted(state.switch_procs[0])[0], sj)
        state.restore(snap)
        assert state.switches == (0,)
        assert state.switch_procs[0] == {0, 1, 2, 3}
        assert all(state.route_of(c) == (0,) for c in state.comms)
        assert state.total_links() == 0

    def test_snapshot_is_immutable_by_later_changes(self):
        state = _small_state()
        snap = state.snapshot()
        state.split_switch(0, random.Random(1))
        assert snap.switch_procs[0] == {0, 1, 2, 3}


class TestEstimates:
    def test_figure1_split_estimates_match_fast_color(self):
        """After any split of the CG pattern, the pipe estimate equals
        the Fast_Color of the crossing sets."""
        from repro.synthesis import fast_color

        state = SynthesisState.initial(CliqueAnalysis.of(figure1_pattern()))
        sj = state.split_switch(0, random.Random(11))
        est = state.pipe_estimate(0, sj)
        expected = fast_color(
            state.pipe_forward(0, sj), state.pipe_forward(sj, 0), state.max_cliques
        )
        assert est == expected
        assert est >= 1

    def test_describe_contains_switches(self):
        state = _small_state()
        assert "S0" in state.describe()
