"""Tests for the SA engine and the global reroute optimizer."""

import random

import pytest

from repro.model import CliqueAnalysis
from repro.synthesis import AnnealSchedule, DesignConstraints, SimulatedAnnealing, SynthesisState
from repro.synthesis.reroute import (
    degree_excess,
    global_processor_moves,
    reduce_degree_violations,
)

from tests.fixtures import pattern_from_phases


class TestAnnealSchedule:
    def test_validates_cooling(self):
        with pytest.raises(ValueError):
            AnnealSchedule(cooling=1.5)

    def test_validates_temperature(self):
        with pytest.raises(ValueError):
            AnnealSchedule(initial_temperature=-1)

    def test_validates_steps(self):
        with pytest.raises(ValueError):
            AnnealSchedule(steps=0)


class TestSimulatedAnnealing:
    def test_minimizes_quadratic(self):
        """SA on f(x) = (x - 7)^2 over integers finds the minimum."""
        sa = SimulatedAnnealing(
            energy=lambda x: (x - 7) ** 2,
            neighbor=lambda x, rng: x + rng.choice([-1, 1]),
            schedule=AnnealSchedule(initial_temperature=20, steps=3000),
            seed=3,
        )
        best, energy = sa.run(100)
        assert best == 7
        assert energy == 0

    def test_returns_best_ever_not_final(self):
        """Even if the walk wanders off, the incumbent is returned."""
        seen = []

        def energy(x):
            seen.append(x)
            return abs(x)

        sa = SimulatedAnnealing(
            energy=energy,
            neighbor=lambda x, rng: x + rng.choice([-3, 3]),
            schedule=AnnealSchedule(initial_temperature=100, cooling=0.99, steps=500),
            seed=0,
        )
        best, e = sa.run(9)
        assert e == min(abs(x) for x in seen + [9])

    def test_deterministic_by_seed(self):
        def make():
            return SimulatedAnnealing(
                energy=lambda x: (x - 3) ** 2,
                neighbor=lambda x, rng: x + rng.choice([-1, 1]),
                seed=11,
            )

        assert make().run(50) == make().run(50)

    @staticmethod
    def _series_steps(steps, moves_per_temperature):
        from repro.obs import enabled_observability

        obs = enabled_observability()
        SimulatedAnnealing(
            energy=lambda x: float(x * x),
            neighbor=lambda x, rng: x + rng.choice((-1, 1)),
            schedule=AnnealSchedule(
                steps=steps, moves_per_temperature=moves_per_temperature
            ),
            seed=0,
            obs=obs,
            label="t.series",
        ).run(5)
        snap = obs.metrics.snapshot()["series"]
        return (
            [x for x, _ in snap["t.series.temperature"]],
            [x for x, _ in snap["t.series.energy"]],
        )

    def test_series_flushes_trailing_partial_temperature_level(self):
        """Regression: with steps not divisible by moves_per_temperature,
        the final partial level's proposals were silently dropped from
        the recorded temperature/energy series."""
        temp_steps, energy_steps = self._series_steps(25, 10)
        assert temp_steps == [10, 20, 25]
        assert energy_steps == [10, 20, 25]

    def test_series_unchanged_when_steps_divide_evenly(self):
        temp_steps, energy_steps = self._series_steps(30, 10)
        assert temp_steps == [10, 20, 30]
        assert energy_steps == [10, 20, 30]


def _dense_stuck_state():
    """A 6-process pattern where each process talks to many partners,
    split down to one processor per switch with direct routes."""
    phases = [
        [(i, (i + 1) % 6) for i in range(6)],
        [(i, (i + 2) % 6) for i in range(6)],
        [(i, (i + 3) % 6) for i in range(6)],
    ]
    pattern = pattern_from_phases(phases, num_processes=6)
    state = SynthesisState.initial(CliqueAnalysis.of(pattern))
    # Manually split into singletons with direct routes.
    for p in range(1, 6):
        s = state._new_switch()
        state.switch_procs[0].discard(p)
        state.switch_procs[s].add(p)
        state.proc_switch[p] = s
    for comm in state.comms:
        state.set_route(comm, state._endpoint_adjusted(comm, (0,)))
    return state


class TestReduceDegreeViolations:
    def test_reduces_excess_on_dense_pattern(self):
        state = _dense_stuck_state()
        constraints = DesignConstraints(max_degree=4)
        before = degree_excess(state, constraints)
        assert before > 0
        reduce_degree_violations(state, constraints)
        assert degree_excess(state, constraints) < before

    def test_never_increases_objective(self):
        state = _dense_stuck_state()
        constraints = DesignConstraints(max_degree=4)
        before = state.objective(constraints.max_degree)
        reduce_degree_violations(state, constraints)
        assert state.objective(constraints.max_degree) <= before

    def test_routes_stay_anchored(self):
        state = _dense_stuck_state()
        reduce_degree_violations(state, DesignConstraints(max_degree=4))
        for comm in state.comms:
            path = state.route_of(comm)
            assert path[0] == state.switch_of(comm.source)
            assert path[-1] == state.switch_of(comm.dest)
            assert len(set(path)) == len(path)

    def test_noop_when_satisfied(self):
        pattern = pattern_from_phases([[(0, 1), (2, 3)]], num_processes=4)
        state = SynthesisState.initial(CliqueAnalysis.of(pattern))
        assert reduce_degree_violations(state, DesignConstraints()) == 0


class TestGlobalProcessorMoves:
    def test_moves_relieve_overloaded_switch(self):
        state = _dense_stuck_state()
        constraints = DesignConstraints(max_degree=4)
        before = state.objective(constraints.max_degree)
        moved = global_processor_moves(state, constraints)
        after = state.objective(constraints.max_degree)
        if moved:
            assert after < before
        else:
            assert after == before

    def test_processors_never_lost(self):
        state = _dense_stuck_state()
        global_processor_moves(state, DesignConstraints(max_degree=4))
        owned = set()
        for procs in state.switch_procs.values():
            owned |= procs
        assert owned == set(range(6))
