"""Property tests for the transactional synthesis-state hot path.

Three contracts the hot-path overhaul rests on, checked over random
patterns and operation sequences:

* **transaction revert is exact** — after any sequence of
  ``move_processor``/``set_route`` mutations inside an uncommitted
  transaction, the undo-log rewind restores the state a deep snapshot
  captured (routes, pipe contents, estimates, degrees, objective);
* **memoized coloring is transparent** — ``ColorMemo`` returns exactly
  what the unmemoized ``Fast_Color`` computes, including on cache hits;
* **preview equals apply** — the preview evaluators
  (``preview_route_change``/``preview_objective``/
  ``preview_local_links``/``preview_move_score``) predict precisely
  what mutating and re-reading the state yields.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.model import CliqueAnalysis
from repro.synthesis.fast_color import fast_color
from repro.synthesis.memo import ColorMemo
from repro.synthesis.moves import _score
from repro.synthesis.state import SynthesisState, normalize_path
from repro.workloads import random_permutation_pattern

MAX_DEGREE = 8


def _prepared_state(pattern_seed, rng):
    """A small synthesis state with several switches to move between."""
    pattern = random_permutation_pattern(6, 2, seed=pattern_seed)
    analysis = CliqueAnalysis.of(pattern)
    state = SynthesisState.initial(analysis)
    state.split_switch(state.switches[0], rng)
    for s in state.switches:
        if len(state.switch_procs[s]) >= 2:
            state.split_switch(s, rng)
            break
    return state


def _canonical(state):
    """Everything observable about a state, in comparable form."""
    return (
        {s: tuple(sorted(ps)) for s, ps in state.switch_procs.items()},
        dict(state.proc_switch),
        dict(state.routes),
        {k: frozenset(v) for k, v in state.pipe_comms.items() if v},
        state.all_estimated_degrees(),
        state.total_links(),
        state.objective(MAX_DEGREE),
    )


def _random_path(state, rng, comm):
    """A random valid route for ``comm`` (endpoints anchored, existing
    switches only); ``set_route`` normalizes it."""
    start = state.switch_of(comm.source)
    end = state.switch_of(comm.dest)
    switches = list(state.switches)
    middle = rng.sample(switches, k=rng.randrange(0, min(3, len(switches)) + 1))
    return [start, *middle, end]


def _mutate_randomly(state, rng, steps):
    comms = sorted(state.comms)
    for _ in range(steps):
        if rng.randrange(2) == 0 and comms:
            comm = rng.choice(comms)
            state.set_route(comm, _random_path(state, rng, comm))
        else:
            proc = rng.choice(sorted(state.proc_switch))
            to = rng.choice(list(state.switches))
            if to != state.switch_of(proc):
                state.move_processor(proc, to)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=500),
    steps=st.integers(min_value=1, max_value=12),
)
def test_transaction_revert_equals_deep_snapshot(seed, steps):
    rng = random.Random(seed)
    state = _prepared_state(seed % 3, rng)
    snap = state.snapshot()
    before = _canonical(state)
    with state.transaction():
        _mutate_randomly(state, rng, steps)
        # no commit: leaving the scope must rewind everything
    assert _canonical(state) == before
    # The deep snapshot agrees with the undo-log rewind.
    state.restore(snap)
    assert _canonical(state) == before


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=500),
    steps=st.integers(min_value=1, max_value=10),
    keep=st.integers(min_value=0, max_value=5),
)
def test_savepoint_rewind_is_partial_and_exact(seed, steps, keep):
    """Rolling back to a mid-sequence savepoint reproduces the state a
    deep snapshot captured at the same point."""
    rng = random.Random(seed)
    state = _prepared_state(seed % 3, rng)
    with state.transaction() as txn:
        _mutate_randomly(state, rng, min(keep, steps))
        mark = txn.savepoint()
        at_mark = _canonical(state)
        _mutate_randomly(state, rng, steps)
        txn.rollback_to(mark)
        assert _canonical(state) == at_mark
        txn.commit()
    assert _canonical(state) == at_mark


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    pattern_seed=st.sampled_from([0, 1, 2]),
    subset_seed=st.integers(min_value=0, max_value=500),
)
def test_memoized_fast_color_equals_unmemoized(pattern_seed, subset_seed):
    pattern = random_permutation_pattern(6, 2, seed=pattern_seed)
    analysis = CliqueAnalysis.of(pattern)
    memo = ColorMemo(analysis.max_cliques)
    rng = random.Random(subset_seed)
    comms = sorted(analysis.communications)
    draws = []
    for _ in range(8):
        fwd = frozenset(rng.sample(comms, rng.randrange(0, len(comms) + 1)))
        bwd = frozenset(rng.sample(comms, rng.randrange(0, len(comms) + 1)))
        draws.append((fwd, bwd))
    # Two passes over the same draws: the second is all cache hits and
    # must still agree with the pure function.
    for _ in range(2):
        for fwd, bwd in draws:
            expected = fast_color(fwd, bwd, analysis.max_cliques)
            assert memo.fast(fwd, bwd) == expected
            assert memo.fast_pair(fwd, bwd) == expected
    assert memo.fast_hits > 0


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=500))
def test_preview_route_change_equals_apply(seed):
    rng = random.Random(seed)
    state = _prepared_state(seed % 3, rng)
    comms = sorted(state.comms)
    for _ in range(6):
        comm = rng.choice(comms)
        candidate = normalize_path(_random_path(state, rng, comm))
        changed = state.preview_route_change(comm, candidate)
        predicted_objective = state.preview_objective(changed, MAX_DEGREE)
        affected = set(state.route_of(comm)) | set(candidate)
        predicted_local = state.preview_local_links(changed, affected)
        with state.transaction():
            state.set_route(comm, candidate)
            assert state.objective(MAX_DEGREE) == predicted_objective
            assert state.local_links(affected) == predicted_local
            # no commit: next iteration previews against the old state


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=500))
def test_preview_move_score_equals_apply(seed):
    rng = random.Random(seed)
    state = _prepared_state(seed % 3, rng)
    switches = list(state.switches)
    checked = 0
    for _ in range(10):
        si, sj = rng.sample(switches, 2)
        candidates = [(p, sj) for p in sorted(state.switch_procs[si])] + [
            (p, si) for p in sorted(state.switch_procs[sj])
        ]
        if not candidates:
            continue
        proc, to = rng.choice(candidates)
        predicted = state.preview_move_score(proc, to, si, sj)
        # The preview cache must not go stale: ask twice.
        assert state.preview_move_score(proc, to, si, sj) == predicted
        with state.transaction():
            state.move_processor(proc, to)
            assert _score(state, si, sj) == predicted
        checked += 1
    assert checked > 0
