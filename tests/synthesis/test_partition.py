"""Tests for Best_Route, processor moves, constraints and the main
partitioning algorithm — including the paper's CG design example
(Sections 3.1 and 3.4)."""

import random

import pytest

from repro.errors import ConstraintError, SynthesisError
from repro.model import CliqueAnalysis, Communication
from repro.synthesis import (
    DesignConstraints,
    Partitioner,
    SynthesisState,
    best_processor_move,
    best_route,
    finalize_pipes,
    partition,
)
from repro.synthesis.conflict_graph import build_conflict_graph
from repro.synthesis.coloring import is_proper_coloring

from tests.fixtures import figure1_pattern, pattern_from_phases


def _c(s, d):
    return Communication(s, d)


class TestConstraints:
    def test_defaults_match_paper(self):
        assert DesignConstraints().max_degree == 5

    def test_rejects_degenerate_degree(self):
        with pytest.raises(ConstraintError):
            DesignConstraints(max_degree=1)

    def test_rejects_bad_pipe_width(self):
        with pytest.raises(ConstraintError):
            DesignConstraints(max_pipe_width=0)

    def test_megaswitch_violates_when_too_wide(self):
        pattern = pattern_from_phases(
            [[(0, 1), (2, 3), (4, 5), (6, 7)]], num_processes=8
        )
        state = SynthesisState.initial(CliqueAnalysis.of(pattern))
        constraints = DesignConstraints(max_degree=5)
        assert constraints.violators(state) == (0,)

    def test_small_megaswitch_satisfies(self):
        pattern = pattern_from_phases([[(0, 1), (2, 3)]], num_processes=4)
        state = SynthesisState.initial(CliqueAnalysis.of(pattern))
        assert DesignConstraints(max_degree=5).violators(state) == ()

    def test_infeasible_combination_rejected(self):
        with pytest.raises(ConstraintError):
            DesignConstraints(
                max_degree=4, max_processors_per_switch=4
            ).check_feasible(16)


class TestBestRoute:
    def _three_switch_state(self):
        """Split Figure 1's pattern twice to get three switches."""
        state = SynthesisState.initial(CliqueAnalysis.of(figure1_pattern()))
        rng = random.Random(5)
        sj = state.split_switch(0, rng)
        best_route(state, 0, sj)
        sk = state.split_switch(0, rng)
        return state, 0, sk

    def test_best_route_never_increases_total(self):
        state, si, sj = self._three_switch_state()
        before = state.total_links()
        best_route(state, si, sj)
        assert state.total_links() <= before

    def test_best_route_keeps_routes_anchored(self):
        state, si, sj = self._three_switch_state()
        best_route(state, si, sj)
        for comm in state.comms:
            path = state.route_of(comm)
            assert path[0] == state.switch_of(comm.source)
            assert path[-1] == state.switch_of(comm.dest)
            assert len(set(path)) == len(path)

    def test_best_route_is_idempotent_at_fixpoint(self):
        state, si, sj = self._three_switch_state()
        best_route(state, si, sj)
        assert best_route(state, si, sj) == 0


class TestProcessorMoves:
    def test_cut1_improves_toward_cut2(self):
        """From the paper's Cut 1 (nodes 1-8 vs 9-16), moving node 9
        (0-indexed 8) lowers the estimate from 4 to 3 — the move the
        paper's walkthrough selects first."""
        state = SynthesisState.initial(CliqueAnalysis.of(figure1_pattern()))
        sj = state._new_switch()
        for p in range(8, 16):
            state.switch_procs[0].discard(p)
            state.switch_procs[sj].add(p)
            state.proc_switch[p] = sj
        for comm in state.comms:
            state.set_route(comm, state._endpoint_adjusted(comm, (0,)))
        assert state.pipe_estimate(0, sj) == 4  # Cut 1 needs four links
        move = best_processor_move(state, 0, sj)
        assert move is not None
        assert move.predicted_links < 4

    def test_no_move_on_balanced_optimum(self):
        # Two isolated pairs: after a perfect split there is nothing to
        # improve.
        pattern = pattern_from_phases([[(0, 1)], [(2, 3)]], num_processes=4)
        state = SynthesisState.initial(CliqueAnalysis.of(pattern))
        sj = state._new_switch()
        for p in (2, 3):
            state.switch_procs[0].discard(p)
            state.switch_procs[sj].add(p)
            state.proc_switch[p] = sj
        for comm in state.comms:
            state.set_route(comm, state._endpoint_adjusted(comm, (0,)))
        assert state.total_links() == 0
        assert best_processor_move(state, 0, sj) is None

    def test_moves_respect_balance_limit(self):
        state = SynthesisState.initial(CliqueAnalysis.of(figure1_pattern()))
        sj = state.split_switch(0, random.Random(2))
        move = best_processor_move(state, 0, sj)
        if move is not None:
            ni = len(state.switch_procs[0])
            nj = len(state.switch_procs[sj])
            if move.to_switch == sj:
                ni, nj = ni - 1, nj + 1
            else:
                ni, nj = ni + 1, nj - 1
            assert abs(ni - nj) <= 2


class TestFinalization:
    def test_finalize_colors_are_proper(self):
        state = SynthesisState.initial(CliqueAnalysis.of(figure1_pattern()))
        rng = random.Random(1)
        sj = state.split_switch(0, rng)
        best_route(state, 0, sj)
        finals = finalize_pipes(state)
        for key, final in finals.items():
            u, v = final.switches
            fwd_adj = build_conflict_graph(state.pipe_forward(u, v), state.max_cliques)
            bwd_adj = build_conflict_graph(state.pipe_forward(v, u), state.max_cliques)
            assert is_proper_coloring(fwd_adj, final.forward_colors)
            assert is_proper_coloring(bwd_adj, final.backward_colors)
            assert final.width >= 1

    def test_width_at_least_estimate(self):
        state = SynthesisState.initial(CliqueAnalysis.of(figure1_pattern()))
        sj = state.split_switch(0, random.Random(1))
        finals = finalize_pipes(state)
        for final in finals.values():
            u, v = final.switches
            assert final.width >= state.pipe_estimate(u, v)


class TestMainAlgorithm:
    def test_figure1_partition_satisfies_degree_five(self):
        result = partition(CliqueAnalysis.of(figure1_pattern()), seed=0)
        for s in result.state.switches:
            assert result.final_degree(s) <= 5

    def test_figure1_uses_far_fewer_links_than_mesh(self):
        """Section 3.4: the generated CG network needs far fewer
        resources than a 4x4 mesh (24 links, 16 switches)."""
        result = partition(CliqueAnalysis.of(figure1_pattern()), seed=0)
        assert result.total_links() < 24
        assert len(result.state.switches) < 16

    def test_every_processor_remains_attached(self):
        result = partition(CliqueAnalysis.of(figure1_pattern()), seed=3)
        attached = set()
        for s, procs in result.state.switch_procs.items():
            attached |= procs
        assert attached == set(range(16))

    def test_routes_cover_all_pattern_communications(self):
        analysis = CliqueAnalysis.of(figure1_pattern())
        result = partition(analysis, seed=1)
        for comm in analysis.communications:
            path = result.state.route_of(comm)
            assert path[0] == result.state.switch_of(comm.source)
            assert path[-1] == result.state.switch_of(comm.dest)

    def test_unsatisfiable_constraints_raise(self):
        # Degree 2 cannot host a processor plus two links on an
        # all-to-all-ish pattern.
        pattern = pattern_from_phases(
            [[(0, 1), (1, 2), (2, 3), (3, 0)], [(0, 2), (1, 3)]],
            num_processes=4,
        )
        with pytest.raises(SynthesisError):
            partition(
                CliqueAnalysis.of(pattern),
                constraints=DesignConstraints(max_degree=2),
                seed=0,
            )

    def test_deterministic_given_seed(self):
        analysis = CliqueAnalysis.of(figure1_pattern())
        a = partition(analysis, seed=1)
        b = partition(analysis, seed=1)
        assert a.state.switch_procs == b.state.switch_procs
        assert a.total_links() == b.total_links()

    def test_failing_seed_fails_deterministically(self):
        """Individual seeds may hit a greedy plateau and fail; the
        failure must be a clean SynthesisError, reproducibly (restarts
        at the generator level are the documented recovery)."""
        analysis = CliqueAnalysis.of(figure1_pattern())
        outcomes = []
        for _ in range(2):
            try:
                partition(analysis, seed=9)
                outcomes.append("ok")
            except SynthesisError:
                outcomes.append("fail")
        assert outcomes[0] == outcomes[1]

    def test_stats_are_recorded(self):
        result = partition(CliqueAnalysis.of(figure1_pattern()), seed=0)
        assert result.bisections >= 1
        assert result.total_links() >= 1
