"""Unit and property tests for conflict-graph coloring."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synthesis import (
    build_adjacency,
    dsatur_coloring,
    exact_coloring,
    greedy_clique_lower_bound,
    greedy_coloring,
    is_proper_coloring,
    num_colors,
)
from repro.synthesis.coloring import validate_adjacency


def _cycle(n):
    return build_adjacency(range(n), [(i, (i + 1) % n) for i in range(n)])


def _clique(n):
    return build_adjacency(
        range(n), [(i, j) for i in range(n) for j in range(i + 1, n)]
    )


def _random_graph(draw_edges, n):
    return build_adjacency(range(n), draw_edges)


class TestBuildAdjacency:
    def test_symmetric(self):
        adj = build_adjacency([0, 1, 2], [(0, 1)])
        assert adj[0] == {1}
        assert adj[1] == {0}
        assert adj[2] == set()
        validate_adjacency(adj)

    def test_self_loops_dropped(self):
        adj = build_adjacency([0], [(0, 0)])
        assert adj[0] == set()

    def test_validate_rejects_asymmetry(self):
        with pytest.raises(ValueError):
            validate_adjacency({0: {1}, 1: set()})


class TestGreedyAndDsatur:
    def test_empty_graph(self):
        assert greedy_coloring({}) == {}
        assert dsatur_coloring({}) == {}
        assert num_colors({}) == 0

    def test_independent_set_uses_one_color(self):
        adj = build_adjacency(range(5), [])
        assert num_colors(dsatur_coloring(adj)) == 1

    def test_clique_needs_n_colors(self):
        adj = _clique(5)
        coloring = dsatur_coloring(adj)
        assert num_colors(coloring) == 5
        assert is_proper_coloring(adj, coloring)

    def test_even_cycle_two_colors(self):
        adj = _cycle(8)
        assert num_colors(dsatur_coloring(adj)) == 2

    def test_odd_cycle_three_colors(self):
        adj = _cycle(7)
        coloring = dsatur_coloring(adj)
        assert num_colors(coloring) == 3
        assert is_proper_coloring(adj, coloring)

    def test_greedy_respects_order(self):
        adj = build_adjacency([0, 1, 2], [(0, 1), (1, 2)])
        coloring = greedy_coloring(adj, order=[0, 2, 1])
        assert coloring[0] == coloring[2] == 0
        assert coloring[1] == 1


class TestCliqueLowerBound:
    def test_empty(self):
        assert greedy_clique_lower_bound({}) == 0

    def test_clique_found(self):
        assert greedy_clique_lower_bound(_clique(6)) == 6

    def test_triangle_in_sparse_graph(self):
        adj = build_adjacency(range(5), [(0, 1), (1, 2), (0, 2), (3, 4)])
        assert greedy_clique_lower_bound(adj) == 3


class TestExactColoring:
    def test_exact_on_odd_cycle(self):
        k, coloring = exact_coloring(_cycle(9))
        assert k == 3
        assert is_proper_coloring(_cycle(9), coloring)

    def test_exact_on_clique(self):
        k, _ = exact_coloring(_clique(7))
        assert k == 7

    def test_exact_on_petersen_graph(self):
        # Chromatic number of the Petersen graph is 3; DSATUR alone can
        # return 3 here, but the exact solver must certify it.
        outer = [(i, (i + 1) % 5) for i in range(5)]
        inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
        spokes = [(i, i + 5) for i in range(5)]
        adj = build_adjacency(range(10), outer + inner + spokes)
        k, coloring = exact_coloring(adj)
        assert k == 3
        assert is_proper_coloring(adj, coloring)

    def test_bipartite_double_star(self):
        edges = [(0, i) for i in range(1, 6)] + [(6, i) for i in range(1, 6)]
        adj = build_adjacency(range(7), edges)
        k, _ = exact_coloring(adj)
        assert k == 2

    def test_falls_back_to_dsatur_above_limit(self):
        adj = _cycle(10)
        k, coloring = exact_coloring(adj, node_limit=4)
        assert is_proper_coloring(adj, coloring)
        assert k == num_colors(coloring)

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=9),
        edges=st.sets(
            st.tuples(st.integers(0, 8), st.integers(0, 8)), max_size=20
        ),
    )
    def test_exact_is_proper_and_not_worse_than_dsatur(self, n, edges):
        adj = build_adjacency(range(n), [(a, b) for a, b in edges if a < b < n])
        k, coloring = exact_coloring(adj)
        assert is_proper_coloring(adj, coloring)
        assert k == num_colors(coloring)
        assert k <= num_colors(dsatur_coloring(adj))
        assert k >= greedy_clique_lower_bound(adj)
        if any(adj[v] for v in adj):
            assert k >= 2
