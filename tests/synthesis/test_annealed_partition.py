"""Tests for the annealed-move partitioner variant."""

import random

from repro.model import CliqueAnalysis, check_contention_free
from repro.synthesis import (
    DesignConstraints,
    Partitioner,
    SynthesisState,
    annealed_moves,
    best_route,
    finalize_pipes,
)
from repro.topology import TableRouting

from tests.fixtures import figure1_pattern, pattern_from_phases


class TestAnnealedMoves:
    def _split_state(self, seed=0):
        state = SynthesisState.initial(CliqueAnalysis.of(figure1_pattern()))
        rng = random.Random(seed)
        sj = state.split_switch(0, rng)
        best_route(state, 0, sj)
        return state, sj, rng

    def test_returns_best_visited_state(self):
        state, sj, rng = self._split_state()
        before = state.total_links()
        annealed_moves(state, 0, sj, rng)
        # The best-visited restore guarantees no regression.
        assert state.total_links() <= before

    def test_routes_stay_anchored(self):
        state, sj, rng = self._split_state(seed=3)
        annealed_moves(state, 0, sj, rng)
        for comm in state.comms:
            path = state.route_of(comm)
            assert path[0] == state.switch_of(comm.source)
            assert path[-1] == state.switch_of(comm.dest)

    def test_balance_respected(self):
        state, sj, rng = self._split_state(seed=5)
        annealed_moves(state, 0, sj, rng)
        ni = len(state.switch_procs[0])
        nj = len(state.switch_procs[sj])
        assert abs(ni - nj) <= 2
        assert min(ni, nj) >= 1

    def test_deterministic_given_rng(self):
        a_state, sj, _ = self._split_state(seed=7)
        annealed_moves(a_state, 0, sj, random.Random(42))
        b_state, sj2, _ = self._split_state(seed=7)
        annealed_moves(b_state, 0, sj2, random.Random(42))
        assert a_state.switch_procs == b_state.switch_procs


class TestAnnealedPartitioner:
    def test_produces_valid_design(self):
        analysis = CliqueAnalysis.of(figure1_pattern())
        result = Partitioner(analysis, seed=1, anneal=True).run()
        for s in result.state.switches:
            assert result.final_degree(s) <= 5

    def test_annealed_design_is_contention_free_end_to_end(self):
        from repro.synthesis import generate_network

        pattern = pattern_from_phases(
            [[(0, 1), (2, 3), (4, 5)], [(1, 2), (3, 4), (5, 0)]],
            num_processes=6,
        )
        # The generate facade does not expose anneal directly; run the
        # partitioner and just validate the state-level invariants.
        analysis = CliqueAnalysis.of(pattern)
        result = Partitioner(
            analysis, constraints=DesignConstraints(max_degree=4), seed=0, anneal=True
        ).run()
        finals = result.pipe_finals or finalize_pipes(result.state)
        assert all(f.width >= 1 for f in finals.values())
