"""Tests for the Fast_Color estimate, including the paper's Cut 1/Cut 2
example (Section 3.1) and the lower-bound property against exact
coloring."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import CliqueAnalysis, Communication
from repro.synthesis import (
    build_conflict_graph,
    conflict_edge_count,
    exact_coloring,
    fast_color,
    fast_color_directional,
)

from tests.fixtures import figure1_pattern


def _c(s, d):
    return Communication(s, d)


class TestFastColorBasics:
    def test_empty_pipe_needs_no_links(self):
        analysis = CliqueAnalysis.of(figure1_pattern())
        assert fast_color(frozenset(), frozenset(), analysis.max_cliques) == 0

    def test_single_communication_needs_one_link(self):
        analysis = CliqueAnalysis.of(figure1_pattern())
        assert fast_color({_c(8, 9)}, frozenset(), analysis.max_cliques) == 1

    def test_direction_maximum_is_taken(self):
        analysis = CliqueAnalysis.of(figure1_pattern())
        fwd = {_c(1, 4), _c(2, 8)}  # both in the transpose clique
        bwd = {_c(8, 9)}
        assert fast_color(fwd, bwd, analysis.max_cliques) == 2

    def test_non_conflicting_communications_share_a_link(self):
        # (8,9) is phase-0 only, (8,10) is phase-1 only: never in the
        # same clique, so one link suffices.
        analysis = CliqueAnalysis.of(figure1_pattern())
        assert fast_color({_c(8, 9), _c(8, 10)}, frozenset(), analysis.max_cliques) == 1


class TestPaperCut1Cut2:
    """Section 3.1: Cut 1 needs four links, Cut 2 needs three.

    Cut 1 splits the paper's nodes 1-8 from 9-16 (0-indexed: 0-7 vs
    8-15); only transpose messages cross it, four per direction.  Cut 2
    moves node 9 (0-indexed 8) to the first half; five messages then go
    forward, but spread over three contention periods, so only three
    links are needed.
    """

    def _crossing(self, group_a, analysis):
        fwd, bwd = set(), set()
        for clique in analysis.max_cliques:
            for comm in clique:
                if comm.source in group_a and comm.dest not in group_a:
                    fwd.add(comm)
                elif comm.source not in group_a and comm.dest in group_a:
                    bwd.add(comm)
        return fwd, bwd

    def test_cut1_needs_four_links(self):
        analysis = CliqueAnalysis.of(figure1_pattern())
        group_a = set(range(8))  # paper nodes 1..8
        fwd, bwd = self._crossing(group_a, analysis)
        assert len(fwd) == 4 and len(bwd) == 4  # eight messages total
        assert fast_color(fwd, bwd, analysis.max_cliques) == 4

    def test_cut2_needs_three_links(self):
        analysis = CliqueAnalysis.of(figure1_pattern())
        group_a = set(range(8)) | {8}  # paper nodes 1..9
        fwd, bwd = self._crossing(group_a, analysis)
        assert len(fwd) + len(bwd) == 10  # ten messages cross Cut 2
        assert fast_color(fwd, bwd, analysis.max_cliques) == 3

    def test_cut2_forward_set_matches_paper_listing(self):
        """The paper lists the five forward communications of Cut 2
        (1-indexed): (9,10), (9,11), (8,14), (4,13), (7,10)."""
        analysis = CliqueAnalysis.of(figure1_pattern())
        group_a = set(range(8)) | {8}
        fwd, _ = self._crossing(group_a, analysis)
        expected = {_c(8, 9), _c(8, 10), _c(7, 13), _c(3, 12), _c(6, 9)}
        assert fwd == expected

    def test_message_count_misleads_but_fast_color_does_not(self):
        """More messages cross Cut 2 than Cut 1, yet Cut 2 needs fewer
        links — the paper's central observation."""
        analysis = CliqueAnalysis.of(figure1_pattern())
        cut1 = self._crossing(set(range(8)), analysis)
        cut2 = self._crossing(set(range(8)) | {8}, analysis)
        assert len(cut2[0]) + len(cut2[1]) > len(cut1[0]) + len(cut1[1])
        assert fast_color(*cut2, analysis.max_cliques) < fast_color(
            *cut1, analysis.max_cliques
        )


class TestLowerBoundProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        subset_seed=st.integers(min_value=0, max_value=2**20),
        size=st.integers(min_value=0, max_value=20),
    )
    def test_fast_color_lower_bounds_exact_coloring(self, subset_seed, size):
        """Fast_Color never exceeds the exact chromatic number of the
        pipe's conflict graph (it is a clique-based lower bound)."""
        import random

        analysis = CliqueAnalysis.of(figure1_pattern())
        rng = random.Random(subset_seed)
        comms = sorted(analysis.communications)
        picked = frozenset(rng.sample(comms, min(size, len(comms))))
        bound = fast_color_directional(picked, analysis.max_cliques)
        adj = build_conflict_graph(picked, analysis.max_cliques)
        exact_k, _ = exact_coloring(adj)
        assert bound <= exact_k

    def test_fast_color_exact_on_figure1_pipes(self):
        """On Figure 1's cuts the bound is tight (paper Section 3.3)."""
        analysis = CliqueAnalysis.of(figure1_pattern())
        for group in (set(range(8)), set(range(8)) | {8}):
            fwd = {
                c
                for clique in analysis.max_cliques
                for c in clique
                if c.source in group and c.dest not in group
            }
            bound = fast_color_directional(fwd, analysis.max_cliques)
            k, _ = exact_coloring(build_conflict_graph(fwd, analysis.max_cliques))
            assert bound == k


class TestConflictGraph:
    def test_edges_only_within_cliques(self):
        analysis = CliqueAnalysis.of(figure1_pattern())
        comms = {_c(8, 9), _c(8, 10)}  # different phases: no edge
        adj = build_conflict_graph(comms, analysis.max_cliques)
        assert conflict_edge_count(adj) == 0

    def test_transpose_pipe_conflicts(self):
        analysis = CliqueAnalysis.of(figure1_pattern())
        comms = {_c(1, 4), _c(2, 8), _c(3, 12)}  # all in the transpose clique
        adj = build_conflict_graph(comms, analysis.max_cliques)
        assert conflict_edge_count(adj) == 3
