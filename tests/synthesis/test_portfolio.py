"""Portfolio determinism harness: serial == parallel == cache-hit.

Mirrors ``tests/eval/test_determinism.py`` for the synthesis portfolio:
the golden fixture pins the canonical JSON of a small cg-8 portfolio
(summary + rehydrated winner design) under fixed seeds; jobs values,
cache states and seed-base framing must all reproduce it byte for byte.

Regenerate the fixture after an *intentional* synthesis change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/synthesis/test_portfolio.py -q
"""

import json
import os
from pathlib import Path

import pytest

from repro.errors import SynthesisError
from repro.eval.parallel import ResultCache, SynthesisCell, run_cells
from repro.eval.serialize import canonical_json, design_to_dict
from repro.synthesis import (
    OBJECTIVES,
    AnnealSchedule,
    DesignConstraints,
    PortfolioConfig,
    generate_network,
    portfolio_cells,
    synthesize_portfolio,
)
from repro.workloads import benchmark

GOLDEN_PATH = Path(__file__).parent / "golden" / "cg8_portfolio.json"

INFEASIBLE = DesignConstraints(max_degree=2)  # no cg-8 seed satisfies this


@pytest.fixture(scope="module")
def cg8():
    return benchmark("cg", 8).pattern


def _config(**over):
    fields = dict(size=3, seed_base=0)
    fields.update(over)
    return PortfolioConfig(**fields)


def _identity(result):
    """The byte-identity surface: summary plus serialized winner."""
    return canonical_json(
        {
            "summary": result.summary_dict(),
            "design": design_to_dict(result.design),
        }
    )


class TestGoldenPortfolio:
    def test_serial_run_matches_golden(self, cg8):
        got = json.loads(_identity(synthesize_portfolio(cg8, config=_config())))
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN_PATH.write_text(
                json.dumps(got, indent=2, sort_keys=True) + "\n", encoding="utf-8"
            )
            pytest.skip(f"regenerated {GOLDEN_PATH}")
        golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        assert got == golden

    def test_cache_hit_is_byte_identical(self, cg8, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = synthesize_portfolio(cg8, config=_config(), cache=cache)
        warm = synthesize_portfolio(cg8, config=_config(), cache=cache)
        assert not any(r.cache_hit for r in cold.runs)
        assert all(r.cache_hit for r in warm.runs)
        assert _identity(warm) == _identity(cold)

    @pytest.mark.slow
    def test_parallel_run_is_byte_identical(self, cg8, tmp_path):
        serial = synthesize_portfolio(cg8, config=_config(), jobs=1)
        fanned = synthesize_portfolio(
            cg8, config=_config(), jobs=4, cache=ResultCache(tmp_path / "c")
        )
        assert _identity(fanned) == _identity(serial)

    def test_winner_matches_generate_network_at_winning_seed(self, cg8):
        """The rehydrated winner serializes identically to a direct
        in-process run at the winning seed."""
        result = synthesize_portfolio(cg8, config=_config())
        direct = generate_network(cg8, seed=result.winner.seed, restarts=1)
        assert canonical_json(design_to_dict(result.design)) == canonical_json(
            design_to_dict(direct)
        )

    def test_seed_base_shift_reuses_overlapping_cells(self, cg8, tmp_path):
        """Seed s is the same cell no matter which base framed it: a
        shifted portfolio hits cache on the overlap and its runs agree
        with the original run-for-run."""
        cache = ResultCache(tmp_path / "cache")
        base = synthesize_portfolio(cg8, config=_config(size=3), cache=cache)
        shifted = synthesize_portfolio(
            cg8, config=_config(size=2, seed_base=1), cache=cache
        )
        assert all(r.cache_hit for r in shifted.runs)
        by_seed = {r.seed: r for r in base.runs}
        for run in shifted.runs:
            original = by_seed[run.seed]
            assert (run.objective, run.links, run.switches) == (
                original.objective,
                original.links,
                original.switches,
            )

    def test_generate_network_portfolio_delegates(self, cg8):
        """The generate_network(portfolio=K) entry point returns the
        portfolio winner's design."""
        via_portfolio = generate_network(cg8, seed=0, portfolio=3)
        direct = synthesize_portfolio(cg8, config=_config(size=3))
        assert canonical_json(design_to_dict(via_portfolio)) == canonical_json(
            design_to_dict(direct.design)
        )


class TestCells:
    def test_grid_is_seed_major(self, cg8):
        config = _config(
            size=2, schedules=(None, AnnealSchedule(steps=100))
        )
        cells = portfolio_cells(cg8, None, config)
        assert [(c.seed, c.schedule) for c in cells] == [
            (0, None),
            (0, AnnealSchedule(steps=100)),
            (1, None),
            (1, AnnealSchedule(steps=100)),
        ]
        assert [c.label for c in cells] == [
            "synth:cg-8:s0/g0",
            "synth:cg-8:s0/g1",
            "synth:cg-8:s1/g0",
            "synth:cg-8:s1/g1",
        ]

    def test_key_is_stable(self, cg8):
        config = _config()
        a = portfolio_cells(cg8, None, config)
        b = portfolio_cells(cg8, None, config)
        assert [c.key() for c in a] == [c.key() for c in b]

    def test_key_distinguishes_specs(self, cg8):
        base = SynthesisCell(label="x", pattern=cg8, seed=0)
        variants = [
            SynthesisCell(label="x", pattern=cg8, seed=1),
            SynthesisCell(
                label="x", pattern=cg8, seed=0,
                constraints=DesignConstraints(max_degree=8),
            ),
            SynthesisCell(
                label="x", pattern=cg8, seed=0, schedule=AnnealSchedule(steps=50)
            ),
            SynthesisCell(label="x", pattern=cg8, seed=0, restarts=2),
            SynthesisCell(label="x", pattern=cg8, seed=0, reroute=False),
            SynthesisCell(label="x", pattern=cg8, seed=0, moves=False),
            SynthesisCell(label="x", pattern=benchmark("mg", 8).pattern, seed=0),
        ]
        keys = {base.key()} | {v.key() for v in variants}
        assert len(keys) == 1 + len(variants)

    def test_label_is_not_part_of_the_key(self, cg8):
        a = SynthesisCell(label="a", pattern=cg8, seed=0)
        b = SynthesisCell(label="b", pattern=cg8, seed=0)
        assert a.key() == b.key()

    def test_infeasible_outcome_is_cached(self, cg8, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cell = SynthesisCell(
            label="synth:cg-8:s0", pattern=cg8, seed=0, constraints=INFEASIBLE
        )
        cold = run_cells([cell], cache=cache)
        warm = run_cells([cell], cache=cache)
        assert cold[0].payload["status"] == "infeasible"
        assert not cold[0].cache_hit
        assert warm[0].cache_hit
        assert canonical_json(warm[0].payload) == canonical_json(cold[0].payload)


class TestConfigAndSelection:
    def test_config_validates(self):
        with pytest.raises(SynthesisError, match="seed"):
            PortfolioConfig(size=0)
        with pytest.raises(SynthesisError, match="schedule"):
            PortfolioConfig(schedules=())
        with pytest.raises(SynthesisError, match="objective"):
            PortfolioConfig(objective="fastest")
        with pytest.raises(SynthesisError, match="restarts"):
            PortfolioConfig(restarts=0)

    def test_objectives_rank_payloads(self):
        payload = {
            "links": [[0, 1], [1, 2], [0, 2]],
            "num_switches": 3,
            "routes": [[0, 1, [0, 1], [0]], [1, 2, [1, 2], [1]]],
        }
        assert OBJECTIVES["links"](payload) == 3.0
        assert OBJECTIVES["switches"](payload) == 3.0
        assert OBJECTIVES["avg-hops"](payload) == 1.0

    def test_all_infeasible_raises_with_run_errors(self, cg8):
        with pytest.raises(SynthesisError, match="all 2 runs failed"):
            synthesize_portfolio(
                cg8, constraints=INFEASIBLE, config=_config(size=2)
            )

    def test_summary_dict_has_no_timing_or_cache_fields(self, cg8):
        result = synthesize_portfolio(cg8, config=_config(size=2))
        text = canonical_json(result.summary_dict())
        assert "seconds" not in text and "cache" not in text

    def test_render_marks_the_winner(self, cg8):
        result = synthesize_portfolio(cg8, config=_config())
        table = result.render()
        starred = [line for line in table.splitlines() if line.endswith("*")]
        assert len(starred) == 1
        assert f"s{result.winner.seed}" in starred[0]


class TestEarlyStop:
    def test_race_stops_at_met_target(self, cg8):
        """With jobs=1 the race runs one cell per wave; a target any
        feasible design meets stops after the first and marks the rest
        skipped."""
        result = synthesize_portfolio(
            cg8, config=_config(target_objective=1e9), jobs=1
        )
        assert result.early_stopped
        assert result.runs[0].status == "ok"
        assert all(r.status == "skipped" for r in result.runs[1:])
        assert result.winner is result.runs[0]

    def test_unmet_target_runs_everything(self, cg8):
        result = synthesize_portfolio(
            cg8, config=_config(size=2, target_objective=0.0), jobs=1
        )
        assert not result.early_stopped
        assert all(r.status != "skipped" for r in result.runs)
