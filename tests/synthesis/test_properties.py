"""Property-based tests of the synthesis stack's core guarantee:
whatever the (well-formed) pattern, the generated network is
contention-free for it and within constraints."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import SynthesisError
from repro.model import CliqueAnalysis, check_contention_free
from repro.synthesis import DesignConstraints, generate_network
from repro.topology import check_routes_valid
from repro.workloads import random_permutation_pattern


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n=st.integers(min_value=4, max_value=8),
    phases=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=50),
)
def test_generated_network_invariants(n, phases, seed):
    """For random permutation workloads the generated design must (a)
    satisfy Theorem 1, (b) respect the degree budget, (c) attach every
    processor, and (d) install walkable routes."""
    pattern = random_permutation_pattern(n, phases, seed=seed)
    constraints = DesignConstraints(max_degree=5)
    try:
        design = generate_network(pattern, constraints=constraints, seed=0, restarts=6)
    except SynthesisError:
        # Dense random permutations can be infeasible at degree 5 —
        # that is a legitimate outcome, not a bug.
        return
    assert design.certificate.contention_free
    assert design.network.max_degree() <= 5
    for p in range(n):
        design.network.switch_of(p)  # raises if unattached
    check_routes_valid(
        design.network, design.topology.routing, pattern.communications
    )


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=10),
    phases=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=100),
)
def test_certificate_agrees_with_model(n, phases, seed):
    """The design's stored certificate equals an independent Theorem 1
    check of the same pattern and routing."""
    pattern = random_permutation_pattern(n, phases, seed=seed)
    try:
        design = generate_network(
            pattern,
            constraints=DesignConstraints(max_degree=8),
            seed=0,
            restarts=4,
        )
    except SynthesisError:
        return
    recheck = check_contention_free(pattern, design.topology.routing)
    assert recheck.contention_free == design.certificate.contention_free


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=30))
def test_megaswitch_always_feasible_with_loose_constraints(seed):
    """With a degree budget >= processor count, the crossbar trivially
    satisfies the constraints and must be returned unpartitioned."""
    pattern = random_permutation_pattern(6, 2, seed=seed)
    design = generate_network(
        pattern, constraints=DesignConstraints(max_degree=6), seed=0, restarts=1
    )
    assert design.num_switches == 1
    assert design.num_links == 0
    assert design.certificate.contention_free
