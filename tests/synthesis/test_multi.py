"""Tests for multi-application synthesis."""

import pytest

from repro.errors import PatternError
from repro.model import CliqueAnalysis, check_contention_free
from repro.synthesis import generate_network_for_set, merge_patterns

from tests.fixtures import pattern_from_phases


def _app_a():
    return pattern_from_phases(
        [[(0, 1), (2, 3)], [(1, 2), (3, 0)]], num_processes=4, name="appA"
    )


def _app_b():
    return pattern_from_phases(
        [[(0, 2), (1, 3)], [(2, 0), (3, 1)]], num_processes=4, name="appB"
    )


class TestMergePatterns:
    def test_merged_preserves_all_messages(self):
        merged = merge_patterns([_app_a(), _app_b()])
        assert len(merged) == len(_app_a()) + len(_app_b())

    def test_applications_never_overlap_in_time(self):
        merged = merge_patterns([_app_a(), _app_b()])
        a_max = max(m.t_finish for m in merged if m.tag.startswith("appA"))
        b_min = min(m.t_start for m in merged if m.tag.startswith("appB"))
        assert a_max < b_min

    def test_cliques_are_union_of_per_app_cliques(self):
        merged = merge_patterns([_app_a(), _app_b()])
        merged_cliques = set(CliqueAnalysis.of(merged).max_cliques)
        per_app = set(CliqueAnalysis.of(_app_a()).max_cliques) | set(
            CliqueAnalysis.of(_app_b()).max_cliques
        )
        assert merged_cliques == per_app

    def test_empty_list_rejected(self):
        with pytest.raises(PatternError):
            merge_patterns([])

    def test_size_mismatch_rejected(self):
        small = pattern_from_phases([[(0, 1)]], num_processes=2)
        with pytest.raises(PatternError):
            merge_patterns([_app_a(), small])

    def test_merged_name(self):
        assert merge_patterns([_app_a(), _app_b()]).name == "appA+appB"


class TestGenerateForSet:
    def test_network_serves_both_applications(self):
        design = generate_network_for_set([_app_a(), _app_b()], seed=0, restarts=4)
        for app in (_app_a(), _app_b()):
            cert = check_contention_free(app, design.topology.routing)
            assert cert.contention_free, app.name

    def test_shared_network_costs_at_least_each_specialized_one(self):
        from repro.synthesis import generate_network

        shared = generate_network_for_set([_app_a(), _app_b()], seed=0, restarts=4)
        for app in (_app_a(), _app_b()):
            own = generate_network(app, seed=0, restarts=4)
            assert shared.num_links >= own.num_links

    def test_cg_and_fft_jointly(self):
        """The cross-workload fix: one network serving both CG and FFT
        contention-free (8-node configs keep the test fast; the 16-node
        case runs in examples/multi_application.py)."""
        from repro.workloads import cg, fft

        cg_p = cg(8, iterations=1).pattern
        fft_p = fft(8, iterations=1).pattern
        design = generate_network_for_set([cg_p, fft_p], seed=0, restarts=8)
        assert design.network.max_degree() <= 5
        for p in (cg_p, fft_p):
            assert check_contention_free(p, design.topology.routing).contention_free
