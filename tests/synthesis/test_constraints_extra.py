"""Extra constraint-framework tests: pipe-width and per-switch caps."""

import pytest

from repro.model import CliqueAnalysis
from repro.synthesis import DesignConstraints, SynthesisState, generate_network

from tests.fixtures import figure1_pattern, pattern_from_phases


class TestPipeWidthConstraint:
    def test_wide_pipe_flagged(self):
        # One period with 3 conflicting pairs crossing any bipartition
        # of {0,1,2} vs {3,4,5} forces a wide pipe.
        pattern = pattern_from_phases(
            [[(0, 3), (1, 4), (2, 5)]], num_processes=6
        )
        state = SynthesisState.initial(CliqueAnalysis.of(pattern))
        import random

        sj = state._new_switch()
        for p in (3, 4, 5):
            state.switch_procs[0].discard(p)
            state.switch_procs[sj].add(p)
            state.proc_switch[p] = sj
        for comm in state.comms:
            state.set_route(comm, state._endpoint_adjusted(comm, (0,)))
        wide = DesignConstraints(max_degree=10, max_pipe_width=2)
        assert not wide.satisfied_by(state, 0)
        loose = DesignConstraints(max_degree=10, max_pipe_width=3)
        assert loose.satisfied_by(state, 0)

    def test_generate_respects_pipe_width(self):
        design = generate_network(
            figure1_pattern(),
            constraints=DesignConstraints(max_degree=5, max_pipe_width=1),
            seed=0,
            restarts=6,
        )
        for u, v in {(l.u, l.v) for l in design.network.links}:
            assert len(design.network.links_between(u, v)) <= 1


class TestProcessorCapConstraint:
    def test_cap_limits_attachments(self):
        design = generate_network(
            figure1_pattern(),
            constraints=DesignConstraints(
                max_degree=5, max_processors_per_switch=2
            ),
            seed=0,
            restarts=6,
        )
        for s in design.network.switches:
            assert len(design.network.processors_of(s)) <= 2

    def test_cap_violation_detected_on_megaswitch(self):
        pattern = pattern_from_phases([[(0, 1)]], num_processes=4)
        state = SynthesisState.initial(CliqueAnalysis.of(pattern))
        constraints = DesignConstraints(max_degree=16, max_processors_per_switch=2)
        assert constraints.violators(state) == (0,)
