"""Design-space exploration: the cost of the degree constraint.

Sweeps the maximum node degree from generous to tight for the CG-16
pattern and reports how switch count, link count and simulated
performance respond — the resource/performance trade-off the paper's
methodology is built to navigate.

Run:  python examples/design_space_sweep.py
"""

from repro.errors import SynthesisError
from repro.floorplan import place
from repro.simulator import SimConfig, simulate
from repro.synthesis import DesignConstraints, generate_network
from repro.topology import crossbar
from repro.workloads import cg


def main():
    bench = cg(16)
    config = SimConfig()
    baseline = simulate(bench.program, crossbar(16), config)
    print(f"crossbar reference: {baseline.execution_cycles} cycles")
    print()
    header = f"{'max degree':>10}  {'switches':>8}  {'links':>5}  {'exec cycles':>11}  {'vs xbar':>7}"
    print(header)
    print("-" * len(header))
    for max_degree in (16, 8, 6, 5, 4, 3):
        try:
            design = generate_network(
                bench.pattern,
                constraints=DesignConstraints(max_degree=max_degree),
                seed=0,
                restarts=8,
            )
        except SynthesisError:
            print(f"{max_degree:>10}  {'—':>8}  {'—':>5}  {'infeasible':>11}")
            continue
        plan = place(design.network, seed=0)
        sim = simulate(
            bench.program,
            design.topology,
            config,
            link_delays=plan.link_delays(),
        )
        ratio = sim.execution_cycles / baseline.execution_cycles
        print(
            f"{max_degree:>10}  {design.num_switches:>8}  {design.num_links:>5}  "
            f"{sim.execution_cycles:>11}  {ratio:>7.3f}"
        )


if __name__ == "__main__":
    main()
