"""The paper's running example, end to end (Figures 1, 2, 5 and 6).

Reconstructs the CG benchmark's communication pattern on 16 nodes,
prints its contention periods (Figure 1), evaluates the paper's Cut 1
vs Cut 2 with Fast_Color (Figure 2), runs the full design methodology
(the Figure 5 walkthrough), floorplans the result (Figure 6(b)) and
reports the resource savings (Figure 7's CG bar).

Run:  python examples/design_cg_network.py
"""

from repro.floorplan import measure_area, place
from repro.model import CliqueAnalysis, describe_periods
from repro.synthesis import fast_color, generate_network
from repro.topology import mesh_for
from repro.workloads import cg


def crossing_sets(analysis, group):
    """Communications crossing a bipartition, per direction."""
    forward, backward = set(), set()
    for clique in analysis.max_cliques:
        for comm in clique:
            if comm.source in group and comm.dest not in group:
                forward.add(comm)
            elif comm.source not in group and comm.dest in group:
                backward.add(comm)
    return forward, backward


def main():
    bench = cg(16, iterations=1)
    analysis = CliqueAnalysis.of(bench.pattern)

    print("=== Figure 1: CG contention periods ===")
    print(describe_periods(analysis.periods))
    print()

    print("=== Figure 2: Cut 1 vs Cut 2 ===")
    cut1 = set(range(8))           # paper nodes 1..8
    cut2 = cut1 | {8}              # paper: node 9 moved across
    for label, group in (("Cut 1", cut1), ("Cut 2", cut2)):
        fwd, bwd = crossing_sets(analysis, group)
        links = fast_color(fwd, bwd, analysis.max_cliques)
        print(
            f"{label}: {len(fwd) + len(bwd)} messages cross, "
            f"Fast_Color says {links} links suffice"
        )
    print("(more messages cross Cut 2, yet it needs fewer links — the "
          "paper's key observation)")
    print()

    print("=== Figure 5: the generated network ===")
    design = generate_network(bench.pattern, seed=0)
    print(design.network.describe())
    print(f"contention-free: {design.certificate.contention_free}")
    print(f"bisections: {design.stats.bisections}, "
          f"route moves: {design.stats.route_moves}, "
          f"processor moves: {design.stats.processor_moves}")
    print()

    print("=== Figure 6(b)/7: floorplan and area vs mesh ===")
    plan = place(design.network, seed=0)
    report = measure_area(design.topology, floorplan=plan)
    mesh = mesh_for(16).network
    print(f"floorplan feasible: {plan.feasible}")
    print(
        f"switches: {design.num_switches} vs mesh {mesh.num_switches} "
        f"({100 * report.switch_ratio:.0f}% of mesh switch area)"
    )
    print(
        f"link area: {report.link_area:.0f} vs mesh {report.mesh_link_area:.0f} "
        f"({100 * report.link_ratio:.0f}% of mesh link area)"
    )


if __name__ == "__main__":
    main()
