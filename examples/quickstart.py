"""Quickstart: synthesize a contention-free network for a custom pattern.

Defines a small application with a known communication schedule, runs
the design methodology on it, verifies Theorem 1 on the result, and
compares trace-driven performance against a mesh.

Run:  python examples/quickstart.py
"""

from repro.model import CliqueAnalysis, check_contention_free
from repro.simulator import SimConfig, simulate
from repro.synthesis import DesignConstraints, generate_network
from repro.topology import mesh_for
from repro.workloads import PhaseProgramBuilder, extract_pattern


def build_application():
    """An 8-process pipeline-with-shuffle application.

    Phase 1: neighbouring stages stream to each other.
    Phase 2: a butterfly shuffle.
    Phase 3: results return to the pipeline heads.
    """
    builder = PhaseProgramBuilder(8, "quickstart-app", jitter=0.05, seed=1)
    for iteration in range(3):
        builder.compute(2000)
        builder.phase(
            [(i, i + 1, 512) for i in range(0, 8, 2)], tag=f"it{iteration}-pipe"
        )
        builder.compute(2000)
        builder.phase(
            [(i, i ^ 4, 512) for i in range(8)], tag=f"it{iteration}-shuffle"
        )
        builder.compute(2000)
        builder.phase(
            [(i + 1, i, 512) for i in range(0, 8, 2)], tag=f"it{iteration}-ret"
        )
    return builder.build()


def main():
    program = build_application()
    pattern = extract_pattern(program)
    print(f"pattern: {len(pattern)} messages over {pattern.num_processes} processes")

    analysis = CliqueAnalysis.of(pattern)
    print(f"contention periods (distinct cliques): {len(analysis.max_cliques)}")
    print(f"widest permutation: {analysis.largest_clique_size} messages")

    # Run the design methodology with the paper's degree-5 constraint.
    design = generate_network(
        pattern, constraints=DesignConstraints(max_degree=5), seed=0
    )
    print()
    print(design.network.describe())
    certificate = check_contention_free(pattern, design.topology.routing)
    print(f"contention-free by Theorem 1: {certificate.contention_free}")

    # Compare against a mesh of the same size.
    config = SimConfig()
    mesh = mesh_for(8)
    for topology in (design.topology, mesh):
        result = simulate(program, topology, config)
        print(result.summary())


if __name__ == "__main__":
    main()
