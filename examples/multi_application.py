"""Designing one network for a workload set.

The cross-workload study (examples/cross_workload_study.py) shows a
network specialized for CG degrades BT.  When the workload set is known
up front — the norm for the special-purpose systems the paper targets —
the methodology can design for the *union* of the patterns instead.
This script compares, for the CG+FFT pair:

* each application on its own specialized network,
* both applications on the jointly-designed network,
* both on the mesh baseline,

along with the resource cost of generality.

Run:  python examples/multi_application.py
"""

from repro.model import check_contention_free
from repro.simulator import SimConfig, simulate
from repro.synthesis import generate_network, generate_network_for_set
from repro.topology import mesh_for
from repro.workloads import cg, fft


def main():
    benches = [cg(8, iterations=2), fft(8, iterations=2)]
    patterns = [b.pattern for b in benches]
    config = SimConfig(max_cycles=20_000_000)

    own = {b.name: generate_network(b.pattern, seed=0) for b in benches}
    shared = generate_network_for_set(patterns, seed=0)
    mesh = mesh_for(8)

    print("resources (switches / links):")
    for name, design in own.items():
        print(f"  {name} specialized: {design.num_switches} / {design.num_links}")
    print(f"  shared:        {shared.num_switches} / {shared.num_links}")
    print(f"  mesh:          {mesh.network.num_switches} / {mesh.network.num_links}")
    print()

    for bench in benches:
        assert check_contention_free(
            bench.pattern, shared.topology.routing
        ).contention_free
        rows = {
            "own net": simulate(bench.program, own[bench.name].topology, config),
            "shared net": simulate(bench.program, shared.topology, config),
            "mesh": simulate(bench.program, mesh, config),
        }
        base = rows["own net"].execution_cycles
        print(f"{bench.name}:")
        for label, result in rows.items():
            print(
                f"  {label:>10}: {result.execution_cycles:7d} cycles "
                f"({result.execution_cycles / base:.3f}x own)"
            )
        print()


if __name__ == "__main__":
    main()
