"""Regenerate every table/figure of the paper's evaluation in one run.

Prints Figures 7(a), 7(b), 8(a), 8(b) and the Section 4.2
cross-workload study.  Takes several minutes (ten network syntheses and
~44 flit-level simulations).

Run:  python examples/reproduce_paper.py
"""

import time

from repro.eval import (
    cross_workload_rows,
    cross_workload_table,
    figure7_rows,
    figure7_table,
    figure8_rows,
    figure8_table,
)


def main():
    start = time.time()
    for size, label in (("small", "a"), ("large", "b")):
        print(
            figure7_table(
                figure7_rows(size, seed=0),
                f"Figure 7({label}): resources normalized to the mesh "
                f"({'8/9' if size == 'small' else '16'} nodes)",
            )
        )
        print()
    for size, label in (("small", "a"), ("large", "b")):
        print(
            figure8_table(
                figure8_rows(size, seed=0),
                f"Figure 8({label}): time normalized to the crossbar "
                f"({'8/9' if size == 'small' else '16'} nodes)",
            )
        )
        print()
    print(
        cross_workload_table(
            cross_workload_rows(seed=0),
            "Section 4.2: FFT/BT traces on the CG-16 generated network",
        )
    )
    print(f"\n[total {time.time() - start:.0f}s]")


if __name__ == "__main__":
    main()
