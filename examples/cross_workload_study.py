"""Section 4.2's robustness study: foreign traces on the CG network.

The paper runs the FFT and BT traces on the network generated for CG:
FFT degrades very little (its row/column exchanges resemble CG's
reduction+transpose), while BT loses roughly 20% (its ADI wavefronts do
not).  This script reproduces the experiment.

Run:  python examples/cross_workload_study.py
"""

from repro.eval import cross_workload_rows, cross_workload_table


def main():
    rows = cross_workload_rows(seed=0)
    print(
        cross_workload_table(
            rows, "FFT-16 and BT-16 replayed on the CG-16 generated network"
        )
    )
    print()
    for guest in ("fft-16", "bt-16"):
        own = next(r for r in rows if r.guest == guest and r.network == "own")
        host = next(r for r in rows if r.guest == guest and r.network == "host")
        print(
            f"{guest}: {100 * host.degradation_vs_own:+.1f}% on the CG network "
            f"vs its own ({own.execution_cycles} cycles)"
        )


if __name__ == "__main__":
    main()
