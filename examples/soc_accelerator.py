"""Application-specific NoC for an SoC accelerator (the paper's intro
scenario).

A 12-core video pipeline: four fetch/DMA cores stream tiles to four
transform cores, which exchange halo data with each other and reduce
into two entropy-coder cores; a control core broadcasts parameters and
collects status.  The schedule is fully characterizable, so the design
methodology can build a minimal switched fabric — compared here against
a mesh and the ideal crossbar, including the tighter degree-4 switch
budget an area-constrained SoC might impose.

Run:  python examples/soc_accelerator.py
"""

from repro.floorplan import TileGrid, measure_area, place
from repro.model import CliqueAnalysis
from repro.simulator import SimConfig, simulate
from repro.synthesis import DesignConstraints, generate_network
from repro.topology import crossbar, mesh
from repro.workloads import PhaseProgramBuilder, extract_pattern

FETCH = [0, 1, 2, 3]       # DMA engines
XFORM = [4, 5, 6, 7]       # transform cores
CODER = [8, 9]             # entropy coders
CTRL = 10                  # control processor
SINK = 11                  # off-chip writeback


def build_program(frames: int = 3):
    builder = PhaseProgramBuilder(12, "soc-video", jitter=0.05, seed=7)
    for frame in range(frames):
        # Control broadcast as a tree: every contention period must be a
        # partial permutation (one send and one receive per core per
        # period — Definition 5), so the parameter distribution fans out
        # in log stages instead of eight simultaneous unicasts.
        builder.compute(500)
        builder.phase([(CTRL, FETCH[0], 64)], tag=f"f{frame}-params0")
        builder.phase(
            [(CTRL, XFORM[0], 64), (FETCH[0], FETCH[1], 64)],
            tag=f"f{frame}-params1",
        )
        builder.phase(
            [(CTRL, FETCH[2], 64), (FETCH[0], FETCH[3], 64),
             (XFORM[0], XFORM[1], 64), (FETCH[1], XFORM[2], 64)],
            tag=f"f{frame}-params2",
        )
        builder.phase([(XFORM[1], XFORM[3], 64)], tag=f"f{frame}-params3")
        # Fetch cores stream tiles into their transform partners (large).
        builder.compute(1500)
        builder.phase(
            [(f, x, 2048) for f, x in zip(FETCH, XFORM)], tag=f"f{frame}-stream"
        )
        # Transform cores exchange halos in a ring.
        builder.compute(3000)
        builder.phase(
            [(XFORM[i], XFORM[(i + 1) % 4], 256) for i in range(4)],
            tag=f"f{frame}-halo+",
        )
        builder.phase(
            [(XFORM[i], XFORM[(i - 1) % 4], 256) for i in range(4)],
            tag=f"f{frame}-halo-",
        )
        # Reduce into the two entropy coders, one contribution per coder
        # per period (each coder has one ejection port).
        builder.compute(2500)
        builder.phase(
            [(XFORM[0], CODER[0], 1024), (XFORM[2], CODER[1], 1024)],
            tag=f"f{frame}-reduce0",
        )
        builder.phase(
            [(XFORM[1], CODER[0], 1024), (XFORM[3], CODER[1], 1024)],
            tag=f"f{frame}-reduce1",
        )
        # Coders write back (the sink absorbs one stream at a time);
        # status returns to control likewise.
        builder.compute(2000)
        builder.phase([(CODER[0], SINK, 1024)], tag=f"f{frame}-wb0")
        builder.phase(
            [(CODER[1], SINK, 1024), (CODER[0], CTRL, 64)],
            tag=f"f{frame}-wb1",
        )
        builder.phase([(CODER[1], CTRL, 64)], tag=f"f{frame}-status")
    return builder.build()


def main():
    program = build_program()
    pattern = extract_pattern(program)
    analysis = CliqueAnalysis.of(pattern)
    print(
        f"SoC schedule: {len(pattern)} messages, "
        f"{len(analysis.max_cliques)} distinct contention periods, "
        f"widest {analysis.largest_clique_size}"
    )

    config = SimConfig()
    results = {}
    for max_degree in (5, 4):
        design = generate_network(
            pattern, constraints=DesignConstraints(max_degree=max_degree), seed=0
        )
        plan = place(design.network, grid=TileGrid(4, 3), seed=0)
        area = measure_area(design.topology, floorplan=plan)
        sim = simulate(
            program, design.topology, config, link_delays=plan.link_delays()
        )
        results[f"generated(deg<={max_degree})"] = sim
        print(
            f"\nmax degree {max_degree}: {design.num_switches} switches, "
            f"{design.num_links} links, contention-free="
            f"{design.certificate.contention_free}, "
            f"{100 * area.total_ratio:.0f}% of mesh area"
        )
        print(design.network.describe())

    results["mesh-4x3"] = simulate(program, mesh(4, 3), config)
    results["crossbar"] = simulate(program, crossbar(12), config)

    print("\n=== performance ===")
    base = results["crossbar"].execution_cycles
    for name, sim in results.items():
        print(f"{name:>22}: {sim.execution_cycles:7d} cycles "
              f"({sim.execution_cycles / base:.3f}x crossbar)")


if __name__ == "__main__":
    main()
