"""Legacy setup shim: keeps ``pip install -e .`` working on toolchains
without PEP 517 wheel support.  All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
