"""Synthesis hot-path benchmark: overhauled pipeline vs the pre-PR baseline.

Pins the two contractual properties of the hot-path overhaul on the
cg-16 pattern with annealing enabled:

* **bit-identity** — the transactional / memoized / preview-evaluated
  pipeline must reproduce the pre-optimization ``PartitionResult``
  exactly (same partition, same routes, same exact pipe widths and
  colors, same move counts), because both arms walk the same seeded
  decision sequence;
* **speedup** — the overhauled pipeline must be at least 3x faster
  than the vendored pre-PR implementation (``legacy_hotpath``).

The baseline is vendored rather than knob-flipped: the
``Partitioner(transactional=False, memoize=False)`` escape hatches keep
the rewritten state class, whose incremental indexes speed up even the
legacy evaluation strategy, understating the true cost of the original
snapshot-per-candidate code.
"""

import time

import pytest

from legacy_hotpath import legacy_baseline

from repro.model.cliques import CliqueAnalysis
from repro.synthesis.constraints import DesignConstraints
from repro.synthesis.partition import Partitioner
from repro.workloads.nas import benchmark as nas_benchmark

SEED = 0
_SPEEDUP_FLOOR = 3.0


@pytest.fixture(scope="module")
def cg16_analysis():
    return CliqueAnalysis.of(nas_benchmark("cg", 16).pattern)


def _run(analysis, *, legacy=False):
    def once():
        part = Partitioner(
            analysis,
            constraints=DesignConstraints(),
            seed=SEED,
            anneal=True,
        )
        return part.run()

    if legacy:
        with legacy_baseline():
            return once()
    return once()


def _signature(result):
    """Everything observable about a ``PartitionResult``, canonically."""
    return {
        "switch_procs": {
            s: tuple(sorted(ps)) for s, ps in sorted(result.state.switch_procs.items())
        },
        "routes": {
            comm: result.state.routes[comm] for comm in sorted(result.state.routes)
        },
        "pipe_finals": {
            tuple(sorted(pair)): (
                final.width,
                tuple(sorted((c, col) for c, col in final.forward_colors.items())),
                tuple(sorted((c, col) for c, col in final.backward_colors.items())),
            )
            for pair, final in sorted(result.pipe_finals.items(), key=lambda kv: sorted(kv[0]))
        },
        "connectivity_links": tuple(sorted(result.connectivity_links)),
        "bisections": result.bisections,
        "route_moves": result.route_moves,
        "processor_moves": result.processor_moves,
        "total_links": result.total_links(),
    }


def test_bit_identical_to_legacy(cg16_analysis):
    new_sig = _signature(_run(cg16_analysis))
    legacy_sig = _signature(_run(cg16_analysis, legacy=True))
    assert new_sig == legacy_sig


def test_speedup_over_legacy(cg16_analysis, show):
    # Interleave the two arms and take each one's best-of so a
    # transient load spike hits both rather than biasing the ratio.
    _run(cg16_analysis)  # warm caches and imports
    new_s = legacy_s = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        _run(cg16_analysis)
        new_s = min(new_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        _run(cg16_analysis, legacy=True)
        legacy_s = min(legacy_s, time.perf_counter() - t0)
    ratio = legacy_s / new_s
    show(
        f"cg-16 anneal: legacy {legacy_s * 1e3:.1f} ms, "
        f"overhauled {new_s * 1e3:.1f} ms, speedup {ratio:.2f}x"
    )
    assert ratio >= _SPEEDUP_FLOOR, (
        f"hot-path speedup regressed: {ratio:.2f}x < {_SPEEDUP_FLOOR}x "
        f"(legacy {legacy_s * 1e3:.1f} ms, new {new_s * 1e3:.1f} ms)"
    )


def test_hotpath_wall_time(benchmark, cg16_analysis):
    result = benchmark.pedantic(
        lambda: _run(cg16_analysis), rounds=3, iterations=1
    )
    assert result.bisections > 0


def test_legacy_wall_time(benchmark, cg16_analysis):
    result = benchmark.pedantic(
        lambda: _run(cg16_analysis, legacy=True), rounds=1, iterations=1
    )
    assert result.bisections > 0
