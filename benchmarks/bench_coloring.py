"""Coloring micro-benchmarks: DSATUR vs exact branch-and-bound.

Supports the Section 3.3 cost analysis: exact coloring is affordable at
finalization because the surviving conflict graphs are small, while
DSATUR alone handles anything larger.
"""

import random

import pytest

from repro.synthesis import (
    build_adjacency,
    dsatur_coloring,
    exact_coloring,
    is_proper_coloring,
    num_colors,
)


def _random_graph(n, p, seed):
    rng = random.Random(seed)
    edges = [
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < p
    ]
    return build_adjacency(range(n), edges)


@pytest.mark.parametrize("n", (10, 16, 24))
def test_dsatur_speed(benchmark, n):
    graph = _random_graph(n, 0.4, seed=n)
    coloring = benchmark(dsatur_coloring, graph)
    assert is_proper_coloring(graph, coloring)


@pytest.mark.parametrize("n", (10, 14, 18))
def test_exact_speed(benchmark, n):
    graph = _random_graph(n, 0.3, seed=n)
    k, coloring = benchmark(exact_coloring, graph)
    assert is_proper_coloring(graph, coloring)
    assert k == num_colors(coloring)


def test_exact_never_worse_than_dsatur(show):
    wins = 0
    total = 0
    for seed in range(20):
        graph = _random_graph(12, 0.35, seed)
        exact_k, _ = exact_coloring(graph)
        dsatur_k = num_colors(dsatur_coloring(graph))
        assert exact_k <= dsatur_k
        total += 1
        if exact_k < dsatur_k:
            wins += 1
    show(f"exact beat DSATUR on {wins}/{total} random graphs")
