"""Partitioning-cost scaling (paper Section 3.3: O(N^2 K L)).

Times one partitioner run on random-permutation patterns of growing
system size with a fixed number of contention periods, and checks the
growth stays polynomial (well under cubic in N over the measured
range).
"""

import time

import pytest

from repro.model import CliqueAnalysis
from repro.synthesis import DesignConstraints, Partitioner
from repro.workloads import random_permutation_pattern

SIZES = (8, 16, 24, 32)
PHASES = 4


def _synthesize(n: int) -> float:
    """One full partitioner run; returns elapsed seconds.

    Individual seeds can hit greedy plateaus on random permutations, so
    a few seeds are tried; the timing covers whichever first succeeds
    (matching how `generate_network` amortizes restarts).
    """
    from repro.errors import SynthesisError

    pattern = random_permutation_pattern(n, PHASES, seed=1)
    analysis = CliqueAnalysis.of(pattern)
    start = time.perf_counter()
    # A permissive degree keeps sizes feasible so we time the
    # partitioning itself, not feasibility rescue passes.
    for seed in range(8):
        try:
            Partitioner(
                analysis, constraints=DesignConstraints(max_degree=8), seed=seed
            ).run()
            break
        except SynthesisError:
            continue
    else:
        raise AssertionError(f"no seed produced a feasible network at N={n}")
    return time.perf_counter() - start


@pytest.mark.parametrize("n", SIZES)
def test_partition_scaling(benchmark, n):
    benchmark.pedantic(_synthesize, args=(n,), rounds=1, iterations=1)


def test_growth_is_polynomial(show):
    times = {n: _synthesize(n) for n in SIZES}
    show(
        "partitioning time by system size: "
        + ", ".join(f"N={n}: {t:.2f}s" for n, t in times.items())
    )
    # Doubling N (16 -> 32) should cost far less than the N^4 that a
    # naive all-pairs-recoloring implementation would exhibit.
    if times[16] > 0.01:
        assert times[32] / times[16] < 16.0
