"""Energy comparison (paper Section 5's power-efficiency direction).

For each small benchmark, estimates the energy of replaying its trace
on the mesh, the torus and the generated network.  Generated networks
should win on total energy: fewer switches and links leak less, and
specialized routes shorten average flit paths.
"""

import pytest

from repro.eval import paper_sizes, prepare, run_performance
from repro.eval.power import estimate_energy
from repro.simulator import SimConfig


def _energy_rows():
    rows = []
    for name, n in paper_sizes("small").items():
        setup = prepare(name, n, seed=0)
        results = run_performance(setup, config=SimConfig(max_cycles=20_000_000))
        for kind in ("mesh", "torus", "generated"):
            top = setup.topology(kind)
            if kind == "generated":
                lengths = dict(setup.floorplan.link_costs)
            elif kind == "torus":
                lengths = setup.link_delays("torus")
            else:
                lengths = {l.link_id: 1 for l in top.network.links}
            report = estimate_energy(
                results[kind],
                num_switches=top.network.num_switches,
                link_lengths=lengths,
            )
            rows.append((setup.name, kind, report))
    return rows


@pytest.mark.figure("power-extension")
def test_generated_networks_save_energy(benchmark, show):
    rows = benchmark.pedantic(_energy_rows, rounds=1, iterations=1)
    lines = ["energy (pJ, lower is better):"]
    by_bench = {}
    for name, kind, report in rows:
        by_bench.setdefault(name, {})[kind] = report
        lines.append(
            f"  {name:>6} {kind:>9}: dynamic {report.dynamic_pj:12.0f} "
            f"static {report.static_pj:12.0f} total {report.total_pj:12.0f}"
        )
    show("\n".join(lines))
    for name, kinds in by_bench.items():
        assert kinds["generated"].total_pj < kinds["mesh"].total_pj, name
        assert kinds["generated"].total_pj < kinds["torus"].total_pj, name
