"""Multi-application synthesis: the cost of generality.

Designs one network for the CG+FFT workload pair (8 nodes) and
compares its resources against each specialized network and the mesh.
The shared network must serve both applications contention-free while
still undercutting the mesh.
"""

import pytest

from repro.model import check_contention_free
from repro.synthesis import generate_network, generate_network_for_set
from repro.topology import mesh_for
from repro.workloads import cg, fft


@pytest.mark.figure("multi-app-extension")
def test_shared_network_cost(benchmark, show):
    cg_p = cg(8, iterations=2).pattern
    fft_p = fft(8, iterations=2).pattern

    shared = benchmark.pedantic(
        generate_network_for_set,
        args=([cg_p, fft_p],),
        kwargs={"seed": 0, "restarts": 8},
        rounds=1,
        iterations=1,
    )
    own_cg = generate_network(cg_p, seed=0, restarts=8)
    own_fft = generate_network(fft_p, seed=0, restarts=8)
    mesh = mesh_for(8).network

    show(
        "resources (switches/links): "
        f"cg-only {own_cg.num_switches}/{own_cg.num_links}, "
        f"fft-only {own_fft.num_switches}/{own_fft.num_links}, "
        f"shared {shared.num_switches}/{shared.num_links}, "
        f"mesh {mesh.num_switches}/{mesh.num_links}"
    )
    # Correct for both applications...
    for p in (cg_p, fft_p):
        assert check_contention_free(p, shared.topology.routing).contention_free
    # ...costlier than each specialized network, cheaper than the mesh.
    assert shared.num_links >= max(own_cg.num_links, own_fft.num_links)
    assert shared.num_switches < mesh.num_switches
    assert shared.num_links < mesh.num_links
