"""Open-loop latency/throughput curves: the cost of specialization.

Not a paper figure — it quantifies the flip side of the methodology.
A network generated for CG's permutations undercuts the mesh's
resources, so under *uniform random* traffic (which it was never
designed for) it runs hotter; under its own transpose-like traffic it
holds up.  The crossbar bounds everything from below.
"""

import pytest

from repro.eval import prepare
from repro.simulator.openloop import (
    latency_throughput_curve,
    transpose_pattern,
    uniform_random,
)
from repro.topology import crossbar, mesh

RATES = (0.05, 0.2, 0.4, 0.6)


def _curves():
    setup = prepare("cg", 16, seed=0)
    topologies = {
        "crossbar": (crossbar(16), None),
        "mesh": (mesh(4, 4), None),
        "generated-cg": (setup.design.topology, setup.floorplan.link_delays()),
    }
    out = {}
    for name, (top, delays) in topologies.items():
        for pattern_name, pattern in (
            ("uniform", uniform_random),
            ("transpose", transpose_pattern),
        ):
            out[(name, pattern_name)] = latency_throughput_curve(
                top,
                RATES,
                pattern=pattern,
                link_delays=delays,
                measure_cycles=1200,
                warmup_cycles=300,
            )
    return out


@pytest.mark.figure("latency-throughput-extension")
def test_latency_throughput(benchmark, show):
    curves = benchmark.pedantic(_curves, rounds=1, iterations=1)
    lines = ["avg latency (cycles) by offered load (flits/node/cycle):"]
    for (name, pattern), points in sorted(curves.items()):
        series = "  ".join(
            f"{p.offered_flits_per_node_cycle:.2f}->{p.avg_latency:.0f}"
            for p in points
        )
        lines.append(f"  {name:>12} / {pattern:<9}: {series}")
    show("\n".join(lines))

    def latency(key, idx):
        return curves[key][idx].avg_latency

    # Below saturation (second-to-last load point) the non-blocking
    # crossbar lower-bounds everything; at deep saturation endpoint
    # head-of-line effects can reorder the tail, so we do not assert
    # there.
    for pattern in ("uniform", "transpose"):
        for name in ("mesh", "generated-cg"):
            assert latency(("crossbar", pattern), -2) <= latency(
                (name, pattern), -2
            ), (name, pattern)
    # The network designed around CG's transpose handles transpose-like
    # traffic far better than the mesh, despite half the resources...
    assert latency(("generated-cg", "transpose"), -1) <= latency(
        ("mesh", "transpose"), -1
    )
    # ...and pays for that specialization under uniform random load.
    assert latency(("generated-cg", "uniform"), -1) >= latency(
        ("mesh", "uniform"), -1
    )
