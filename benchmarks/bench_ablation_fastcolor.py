"""Ablation: Fast_Color bound quality and speed (paper Section 3.3).

The methodology's complexity rests on Fast_Color being (a) a tight
lower bound on each pipe's chromatic number and (b) much cheaper than
exact coloring.  This bench quantifies both over every pipe of every
benchmark design.
"""

import time

import pytest

from repro.eval import paper_sizes, prepare
from repro.synthesis import (
    build_conflict_graph,
    exact_coloring,
    fast_color_directional,
)


def _all_pipes():
    """(pipe direction communications, max cliques) for every pipe of
    every small benchmark design."""
    pipes = []
    for name, n in paper_sizes("small").items():
        setup = prepare(name, n, seed=0)
        state = setup.design.result.state
        cliques = state.max_cliques
        for pair in state.pipes():
            u, v = sorted(pair)
            pipes.append((state.pipe_forward(u, v), cliques))
            pipes.append((state.pipe_forward(v, u), cliques))
    return pipes


@pytest.fixture(scope="module")
def pipes():
    return _all_pipes()


def test_fast_color_is_tight_on_real_pipes(pipes, show):
    """Section 3.3 claims the clique bound is a close (usually exact)
    estimate; verify exactness rate on the pipes the methodology
    actually encounters."""
    exact_hits = 0
    total = 0
    for comms, cliques in pipes:
        if not comms:
            continue
        total += 1
        bound = fast_color_directional(comms, cliques)
        chromatic, _ = exact_coloring(build_conflict_graph(comms, cliques))
        assert bound <= chromatic  # lower bound, always
        if bound == chromatic:
            exact_hits += 1
    show(f"Fast_Color exact on {exact_hits}/{total} benchmark pipes")
    assert total > 0
    assert exact_hits / total >= 0.9


def test_fast_color_speed(benchmark, pipes):
    loaded = [(c, k) for c, k in pipes if c]

    def run_fast():
        for comms, cliques in loaded:
            fast_color_directional(comms, cliques)

    benchmark(run_fast)


def test_exact_coloring_cost_reference(benchmark, pipes):
    loaded = [(c, k) for c, k in pipes if c]

    def run_exact():
        for comms, cliques in loaded:
            exact_coloring(build_conflict_graph(comms, cliques))

    benchmark(run_exact)
