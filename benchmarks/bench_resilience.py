"""Fault-injection resilience study: minimal networks vs the mesh.

Not a paper figure — the paper's only robustness evidence is the
cross-workload study.  This bench answers the question the methodology
leaves open: a synthesized network is *minimal* for its pattern, so how
does it degrade when a link actually fails, compared to a mesh that
carries spare paths?  Expected shape: the generated network disconnects
under a substantial fraction of single-link faults (no spare paths by
construction), while the mesh survives every single-link fault with
bounded inflation.
"""

import pytest

from repro.eval import prepare, resilience_table, run_resilience
from repro.faults import CampaignSpec, build_campaign


@pytest.fixture(scope="module")
def setup():
    return prepare("cg", 8, seed=0)


def _campaign_report(setup, kind, jobs, cache):
    topology = setup.topology(kind)
    campaign = build_campaign(topology.network, CampaignSpec(kinds=("link",)))
    return run_resilience(
        setup.benchmark.program,
        topology,
        campaign,
        link_delays=setup.link_delays(kind),
        jobs=jobs,
        cache=cache,
    )


@pytest.mark.figure("resilience")
def test_single_link_campaign_generated_vs_mesh(benchmark, setup, show, jobs, eval_cache):
    reports = benchmark.pedantic(
        lambda: {
            k: _campaign_report(setup, k, jobs, eval_cache)
            for k in ("generated", "mesh")
        },
        rounds=1,
        iterations=1,
    )
    for kind, report in reports.items():
        show(
            resilience_table(
                report, f"Single-link faults on {report.topology_name}"
            )
        )
    generated, mesh = reports["generated"], reports["mesh"]
    # The mesh's spare paths keep it connected under any single link
    # fault; route repair delivers everything.
    assert mesh.connectivity == 1.0
    assert mesh.min_delivered_fraction == 1.0
    # The minimal generated network cannot beat the mesh's fault
    # tolerance — it has no spare links by construction.
    assert generated.connectivity <= mesh.connectivity
    # Every scenario resolves: repaired or reported disconnected,
    # never a hang.
    for report in reports.values():
        assert all(o.status in ("ok", "disconnected") for o in report.outcomes)
