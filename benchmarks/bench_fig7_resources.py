"""Figure 7: switch/link area of generated networks vs mesh and torus.

Regenerates both panels — (a) the 8/9-node configurations, (b) the
16-node configurations — asserting the paper's headline shape: the
generated networks use strictly fewer resources than the mesh (and far
less link area than the torus), with CG the most compressible pattern.
"""

import pytest

from repro.eval import figure7_rows, figure7_table


@pytest.mark.figure("7a")
def test_fig7a_small_resources(benchmark, show, jobs, eval_cache):
    rows = benchmark.pedantic(
        figure7_rows,
        args=("small",),
        kwargs={"seed": 0, "jobs": jobs, "cache": eval_cache},
        rounds=1,
        iterations=1,
    )
    show(figure7_table(rows, "Figure 7(a): resources vs mesh (8/9 nodes)"))
    for row in rows:
        assert row.generated_switch_ratio < 1.0
        assert row.generated_link_ratio < 1.0
        # Torus reference: same switches, double link area (paper text).
        assert row.torus_link_ratio == 2.0


@pytest.mark.figure("7b")
def test_fig7b_large_resources(benchmark, show, jobs, eval_cache):
    rows = benchmark.pedantic(
        figure7_rows,
        args=("large",),
        kwargs={"seed": 0, "jobs": jobs, "cache": eval_cache},
        rounds=1,
        iterations=1,
    )
    show(figure7_table(rows, "Figure 7(b): resources vs mesh (16 nodes)"))
    by_name = {r.benchmark: r for r in rows}
    for row in rows:
        assert row.generated_switch_ratio < 1.0
        assert row.generated_link_ratio < 1.0
    # CG compresses best (the paper's best case: ~50% switches).
    cg = by_name["cg-16"]
    assert cg.generated_switch_ratio <= min(
        r.generated_switch_ratio for r in rows
    )
    # BT/SP have the most complicated patterns and need the most
    # resources of the suite.
    assert by_name["bt-16"].generated_switch_ratio >= cg.generated_switch_ratio
    assert by_name["sp-16"].generated_switch_ratio >= cg.generated_switch_ratio
