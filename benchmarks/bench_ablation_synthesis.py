"""Ablations of the design methodology's optimization passes.

DESIGN.md calls out three load-bearing choices: the inter-partition
processor moves (Appendix steps 7-9), the route optimization
(Best_Route + the global reroute pass), and multi-seed restarts.  Each
ablation disables one and measures the resource cost on the CG-16
pattern (the paper's running example).
"""

import pytest

from repro.errors import SynthesisError
from repro.synthesis import generate_network
from repro.workloads import cg

RESTARTS = 6


@pytest.fixture(scope="module")
def pattern():
    return cg(16).pattern


@pytest.fixture(scope="module")
def full_design(pattern):
    return generate_network(pattern, seed=0, restarts=RESTARTS)


def test_full_methodology(benchmark, pattern):
    design = benchmark.pedantic(
        generate_network,
        args=(pattern,),
        kwargs={"seed": 0, "restarts": RESTARTS},
        rounds=1,
        iterations=1,
    )
    assert design.certificate.contention_free


def test_ablate_processor_moves(benchmark, pattern, full_design, show):
    """Without the move pass the bisection cannot repair a bad random
    halving, so the network needs more resources."""
    try:
        ablated = benchmark.pedantic(
            generate_network,
            args=(pattern,),
            kwargs={"seed": 0, "restarts": RESTARTS, "moves": False},
            rounds=1,
            iterations=1,
        )
    except SynthesisError:
        show("ablate moves: synthesis infeasible without processor moves")
        return
    show(
        f"moves on: {full_design.num_switches} sw / {full_design.num_links} links; "
        f"moves off: {ablated.num_switches} sw / {ablated.num_links} links"
    )
    assert ablated.num_links >= full_design.num_links


def test_ablate_reroute(benchmark, pattern, full_design, show):
    """The global reroute pass mainly rescues dense patterns; on CG it
    must never hurt."""
    try:
        ablated = benchmark.pedantic(
            generate_network,
            args=(pattern,),
            kwargs={"seed": 0, "restarts": RESTARTS, "reroute": False},
            rounds=1,
            iterations=1,
        )
    except SynthesisError:
        show("ablate reroute: synthesis infeasible without rerouting")
        return
    show(
        f"reroute on: {full_design.num_links} links; "
        f"reroute off: {ablated.num_links} links"
    )
    assert ablated.num_links >= full_design.num_links * 0.9


def test_annealed_variant_robustness(benchmark, pattern, show):
    """The annealed move schedule escapes plateaus the greedy walk
    cannot: across a seed sweep it should fail no more often than the
    greedy Appendix variant and match its best quality."""
    from repro.errors import SynthesisError
    from repro.model import CliqueAnalysis
    from repro.synthesis import Partitioner

    analysis = CliqueAnalysis.of(pattern)

    def sweep(anneal):
        results, fails = [], 0
        for seed in range(8):
            try:
                r = Partitioner(analysis, seed=seed, anneal=anneal).run()
                results.append((r.total_links(), len(r.state.switches)))
            except SynthesisError:
                fails += 1
        return min(results), fails

    (greedy_best, greedy_fails) = benchmark.pedantic(
        sweep, args=(False,), rounds=1, iterations=1
    )
    annealed_best, annealed_fails = sweep(True)
    show(
        f"greedy: best {greedy_best}, {greedy_fails}/8 seeds failed; "
        f"annealed: best {annealed_best}, {annealed_fails}/8 seeds failed"
    )
    assert annealed_fails <= greedy_fails
    assert annealed_best[0] <= greedy_best[0] * 1.25


def test_ablate_restarts(benchmark, pattern, full_design, show):
    """A single seed is hostage to its random initial halving."""
    single = benchmark.pedantic(
        generate_network,
        args=(pattern,),
        kwargs={"seed": 0, "restarts": 1},
        rounds=1,
        iterations=1,
    )
    show(
        f"restarts={RESTARTS}: {full_design.num_links} links; "
        f"restarts=1: {single.num_links} links"
    )
    assert single.num_links >= full_design.num_links
