"""Shared fixtures for the benchmark harness.

The benchmarks double as the reproduction harness for the paper's
figures: each bench regenerates one table/figure and prints it, so
``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation.
"""

import sys
from pathlib import Path

import pytest

# Allow `from benchmarks...` style helpers if ever needed.
sys.path.insert(0, str(Path(__file__).resolve().parent))


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure(name): benchmark regenerates a paper figure"
    )


@pytest.fixture(scope="session")
def show():
    """Print helper that survives pytest's capture when -s is absent."""

    def _show(text: str) -> None:
        print("\n" + text)

    return _show
