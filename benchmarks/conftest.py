"""Shared fixtures for the benchmark harness.

The benchmarks double as the reproduction harness for the paper's
figures: each bench regenerates one table/figure and prints it, so
``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation.

The grid is fanned out through :mod:`repro.eval.parallel`:

* ``--jobs N`` runs simulation cells over N worker processes
  (``--jobs 0`` = all cores; default 1, serial),
* results are cached under ``--cache-dir`` (default ``.repro-cache``)
  so re-runs only pay for invalidated cells,
* ``--no-cache`` forces every cell to recompute.
"""

import sys
from pathlib import Path

import pytest

# Allow `from benchmarks...` style helpers if ever needed.
sys.path.insert(0, str(Path(__file__).resolve().parent))


def pytest_addoption(parser):
    group = parser.getgroup("repro evaluation grid")
    group.addoption(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for evaluation cells (1=serial, 0=all cores)",
    )
    group.addoption(
        "--no-cache", action="store_true", default=False,
        help="bypass the on-disk result cache",
    )
    group.addoption(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache directory (default .repro-cache)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure(name): benchmark regenerates a paper figure"
    )


@pytest.fixture(scope="session")
def jobs(request):
    """Worker count for the parallel evaluation runner."""
    return request.config.getoption("--jobs")


@pytest.fixture(scope="session")
def eval_cache(request):
    """The shared on-disk result cache (None with ``--no-cache``)."""
    from repro.eval.parallel import DEFAULT_CACHE_DIR, ResultCache

    if request.config.getoption("--no-cache"):
        return None
    root = request.config.getoption("--cache-dir") or DEFAULT_CACHE_DIR
    return ResultCache(root)


@pytest.fixture(scope="session")
def show():
    """Print helper that survives pytest's capture when -s is absent."""

    def _show(text: str) -> None:
        print("\n" + text)

    return _show
