"""Figure 8: trace-driven performance vs the non-blocking crossbar.

Regenerates both panels of Figure 8 — execution and communication time
of mesh (DOR), torus (fully adaptive) and the generated networks,
normalized to the crossbar — and asserts the paper's shape:

* the generated network stays within a few percent of the crossbar,
* it never loses meaningfully to the mesh,
* the CG-16 mesh penalty is the largest of the suite,
* no deadlocks occur in any run (paper Section 4.2).
"""

import pytest

from repro.eval import figure8_rows, figure8_table

# Generated networks must track the ideal crossbar closely; the paper
# reports a gap under 4%, we allow a little slack for the reimplemented
# substrate.
CROSSBAR_TRACKING = 1.06


def _by_key(rows):
    return {(r.benchmark, r.topology): r for r in rows}


@pytest.mark.figure("8a")
def test_fig8a_small_performance(benchmark, show, jobs, eval_cache):
    rows = benchmark.pedantic(
        figure8_rows,
        args=("small",),
        kwargs={"seed": 0, "jobs": jobs, "cache": eval_cache},
        rounds=1,
        iterations=1,
    )
    show(figure8_table(rows, "Figure 8(a): time vs crossbar (8/9 nodes)"))
    table = _by_key(rows)
    for (name, topo), row in table.items():
        assert row.deadlocks == 0, (name, topo)
        if topo == "generated":
            assert row.execution_ratio <= CROSSBAR_TRACKING, name
            mesh = table[(name, "mesh")]
            assert row.execution_ratio <= mesh.execution_ratio * 1.02, name


@pytest.mark.figure("8b")
def test_fig8b_large_performance(benchmark, show, jobs, eval_cache):
    rows = benchmark.pedantic(
        figure8_rows,
        args=("large",),
        kwargs={"seed": 0, "jobs": jobs, "cache": eval_cache},
        rounds=1,
        iterations=1,
    )
    show(figure8_table(rows, "Figure 8(b): time vs crossbar (16 nodes)"))
    table = _by_key(rows)
    for (name, topo), row in table.items():
        assert row.deadlocks == 0, (name, topo)
        if topo == "generated":
            assert row.execution_ratio <= CROSSBAR_TRACKING, name
            mesh = table[(name, "mesh")]
            assert row.execution_ratio <= mesh.execution_ratio * 1.02, name
    # CG shows the largest mesh penalty of the suite (paper: ~18% exec,
    # ~26% comm at 16 nodes).
    cg_mesh = table[("cg-16", "mesh")]
    assert cg_mesh.execution_ratio == max(
        r.execution_ratio for (n, t), r in table.items() if t == "mesh"
    )
    assert cg_mesh.communication_ratio > 1.10
