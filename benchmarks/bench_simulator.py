"""Simulator micro-benchmarks: engine throughput and policy overheads.

Not a paper figure; quantifies the substrate so regressions in the
flit-level engine are visible independently of the evaluation results.
"""

import pytest

from repro.simulator import SimConfig, simulate
from repro.topology import crossbar, mesh, torus
from repro.workloads import PhaseProgramBuilder


def _saturating_program(n, phases=6, size=512):
    b = PhaseProgramBuilder(n, "saturate")
    for k in range(phases):
        b.compute(50)
        b.phase([(i, (i + k + 1) % n, size) for i in range(n)])
    return b.build()


@pytest.fixture(scope="module")
def program16():
    return _saturating_program(16)


def test_engine_throughput_mesh(benchmark, program16):
    result = benchmark.pedantic(
        simulate,
        args=(program16, mesh(4, 4)),
        kwargs={"config": SimConfig(max_cycles=5_000_000)},
        rounds=1,
        iterations=1,
    )
    assert result.delivered_packets == program16.total_messages


def test_engine_throughput_torus_adaptive(benchmark, program16):
    result = benchmark.pedantic(
        simulate,
        args=(program16, torus(4, 4)),
        kwargs={"config": SimConfig(max_cycles=5_000_000)},
        rounds=1,
        iterations=1,
    )
    assert result.delivered_packets == program16.total_messages


def test_engine_throughput_crossbar(benchmark, program16):
    result = benchmark.pedantic(
        simulate,
        args=(program16, crossbar(16)),
        kwargs={"config": SimConfig(max_cycles=5_000_000)},
        rounds=1,
        iterations=1,
    )
    assert result.delivered_packets == program16.total_messages


def test_flit_hop_rate(show, program16):
    """Report flit-hops per wall second — the engine's work rate."""
    import time

    t0 = time.perf_counter()
    result = simulate(program16, mesh(4, 4), SimConfig(max_cycles=5_000_000))
    elapsed = time.perf_counter() - t0
    rate = result.flit_hops / max(elapsed, 1e-9)
    show(f"engine rate: {rate:,.0f} flit-hops/s over {result.flit_hops} hops")
    assert result.flit_hops > 0
