"""Simulator micro-benchmarks: engine throughput and policy overheads.

Not a paper figure; quantifies the substrate so regressions in the
flit-level engine are visible independently of the evaluation results.
"""

import pytest

from repro.simulator import SimConfig, simulate
from repro.topology import crossbar, mesh, torus
from repro.workloads import PhaseProgramBuilder


def _saturating_program(n, phases=6, size=512):
    b = PhaseProgramBuilder(n, "saturate")
    for k in range(phases):
        b.compute(50)
        b.phase([(i, (i + k + 1) % n, size) for i in range(n)])
    return b.build()


@pytest.fixture(scope="module")
def program16():
    return _saturating_program(16)


def test_engine_throughput_mesh(benchmark, program16):
    result = benchmark.pedantic(
        simulate,
        args=(program16, mesh(4, 4)),
        kwargs={"config": SimConfig(max_cycles=5_000_000)},
        rounds=1,
        iterations=1,
    )
    assert result.delivered_packets == program16.total_messages


def test_engine_throughput_torus_adaptive(benchmark, program16):
    result = benchmark.pedantic(
        simulate,
        args=(program16, torus(4, 4)),
        kwargs={"config": SimConfig(max_cycles=5_000_000)},
        rounds=1,
        iterations=1,
    )
    assert result.delivered_packets == program16.total_messages


def test_engine_throughput_crossbar(benchmark, program16):
    result = benchmark.pedantic(
        simulate,
        args=(program16, crossbar(16)),
        kwargs={"config": SimConfig(max_cycles=5_000_000)},
        rounds=1,
        iterations=1,
    )
    assert result.delivered_packets == program16.total_messages


def test_flit_hop_rate(show, program16):
    """Report flit-hops per wall second — the engine's work rate."""
    import time

    t0 = time.perf_counter()
    result = simulate(program16, mesh(4, 4), SimConfig(max_cycles=5_000_000))
    elapsed = time.perf_counter() - t0
    rate = result.flit_hops / max(elapsed, 1e-9)
    show(f"engine rate: {rate:,.0f} flit-hops/s over {result.flit_hops} hops")
    assert result.flit_hops > 0


def _deep_queue_program(n=2, messages=200, size=64):
    """One process fires every send back to back (no blocking receives
    between them), so its NIC queue goes hundreds of packets deep while
    the single mesh link drains slowly — the workload that made the old
    O(total-queued) ``Engine.next_inject_time`` scan quadratic."""
    from repro.workloads.events import Program, RecvEvent, SendEvent

    sends = tuple(SendEvent(dest=1, size_bytes=size) for _ in range(messages))
    recvs = tuple(RecvEvent(source=0) for _ in range(messages))
    return Program(name="deep-queue", num_processes=n, events=(sends, recvs))


def test_idle_advance_deep_queues(show):
    """Exercise idle-cycle advancement against deep NIC queues.

    ``Engine.next_inject_time`` now binary-searches one cached sorted
    list per NIC instead of rebuilding a list over every queued packet
    each stalled cycle, so this stays flat as queues deepen.
    """
    import time

    program = _deep_queue_program()
    t0 = time.perf_counter()
    result = simulate(program, mesh(2, 1), SimConfig(max_cycles=5_000_000))
    elapsed = time.perf_counter() - t0
    show(
        f"deep-queue drain: {result.execution_cycles} cycles in "
        f"{elapsed:.3f}s ({result.execution_cycles / max(elapsed, 1e-9):,.0f} "
        "cycles/s)"
    )
    assert result.delivered_packets == 200


def _idle_heavy_program(n=256, messages=2000, size=64):
    """A neighbour-to-neighbour stream across a large machine: all but
    two of the ``n`` NICs (and all but two routers) are idle on every
    simulated cycle, yet a flit is in flight on almost every cycle so
    the idle-advance jump never engages.  The old engine swept every
    NIC per cycle regardless; the event-driven wake lists step only the
    active ones."""
    from repro.workloads.events import Program, RecvEvent, SendEvent

    events = [()] * n
    events[0] = tuple(SendEvent(dest=1, size_bytes=size) for _ in range(messages))
    events[1] = tuple(RecvEvent(source=0) for _ in range(messages))
    return Program(name="idle-heavy", num_processes=n, events=tuple(events))


def test_idle_heavy_event_driven_nics(show):
    """Idle-heavy traces must not pay for sleeping NICs.

    Structural pin of the event-driven stepping: over the whole run the
    engine may activate a NIC only a vanishing number of times compared
    with the ``cycles x NICs`` sweeps the always-sweep engine paid.
    """
    import time

    from repro.simulator.engine import Engine
    from repro.simulator.simulation import routing_policy_for

    program = _idle_heavy_program()
    top = mesh(16, 16)
    t0 = time.perf_counter()
    result = simulate(program, top, SimConfig(max_cycles=5_000_000))
    elapsed = time.perf_counter() - t0

    # Re-run at the engine level to read the wakeup counter.
    engine = Engine(top, routing_policy_for(top), SimConfig(max_cycles=5_000_000))
    from repro.simulator.process import ProcessReplay

    replay = ProcessReplay(program, engine, SimConfig(max_cycles=5_000_000))
    t = 0
    replay.run_ready()
    while (not replay.all_done() or engine.busy()) and t < 5_000_000:
        if engine.step(t):
            replay.run_ready()
        t += 1
    assert replay.all_done() and not engine.busy()
    sweeps = engine.cycles_simulated * len(engine.nics)
    show(
        f"idle-heavy (256 NICs, 2 busy): {result.execution_cycles} cycles in "
        f"{elapsed:.3f}s; {engine.nic_wakeups} NIC wakeups vs "
        f"{sweeps} always-sweep NIC steps "
        f"({engine.nic_wakeups / sweeps:.2%})"
    )
    assert result.delivered_packets == 2000
    # Far fewer activations than one-per-NIC-per-cycle: the sleeping
    # 254 NICs genuinely cost nothing.
    assert engine.nic_wakeups < sweeps / 50


def test_idle_heavy_wall_time(benchmark):
    program = _idle_heavy_program()
    result = benchmark.pedantic(
        simulate,
        args=(program, mesh(16, 16)),
        kwargs={"config": SimConfig(max_cycles=5_000_000)},
        rounds=3,
        iterations=1,
    )
    assert result.delivered_packets == 2000


def test_obs_disabled_and_enabled_overhead(show, program16):
    """Compare engine time with observability absent vs fully enabled.

    The disabled path must stay within the <2% budget of the plain
    engine (hot paths gate on one cached boolean); the enabled path
    reports what full collection costs.  Results must be identical in
    every mode.
    """
    import time

    from repro.obs import enabled_observability

    cfg = SimConfig(max_cycles=5_000_000)

    def best_of(n, **kwargs):
        best, result = float("inf"), None
        for _ in range(n):
            t0 = time.perf_counter()
            result = simulate(program16, mesh(4, 4), cfg, **kwargs)
            best = min(best, time.perf_counter() - t0)
        return best, result

    base_s, base = best_of(3)
    off_s, off = best_of(3, obs=None)
    on_s, on = best_of(3, obs=enabled_observability(sample_every=128))

    show(
        f"no obs: {base_s:.3f}s, disabled obs: {off_s:.3f}s "
        f"({100 * (off_s / base_s - 1):+.1f}%), enabled obs: {on_s:.3f}s "
        f"({100 * (on_s / base_s - 1):+.1f}%)"
    )
    assert base.execution_cycles == off.execution_cycles == on.execution_cycles
    assert base.flit_hops == off.flit_hops == on.flit_hops
