"""Section 4.2's cross-workload robustness study.

Replays the FFT-16 and BT-16 traces on the network generated for CG-16.
Paper shape: FFT runs nearly unharmed (its row/column exchanges
resemble CG's reduction/transpose communication); BT degrades markedly
(around 20% in the paper) because its multipartition sweeps do not.
"""

import pytest

from repro.eval import cross_workload_rows, cross_workload_table


@pytest.mark.figure("cross-workload")
def test_cross_workload(benchmark, show, jobs, eval_cache):
    rows = benchmark.pedantic(
        cross_workload_rows,
        kwargs={"seed": 0, "jobs": jobs, "cache": eval_cache},
        rounds=1,
        iterations=1,
    )
    show(
        cross_workload_table(
            rows, "Section 4.2: foreign traces on the CG-16 network"
        )
    )
    by_key = {(r.guest, r.network): r for r in rows}
    fft_on_cg = by_key[("fft-16", "host")]
    bt_on_cg = by_key[("bt-16", "host")]
    # FFT tolerates the CG network far better than BT does.
    assert fft_on_cg.degradation_vs_own < bt_on_cg.degradation_vs_own
    # And FFT's own loss stays small (paper: under 2%; we allow slack
    # for the synthetic substrate).
    assert fft_on_cg.degradation_vs_own < 0.10
    # BT's degradation is visible but bounded ("still applicable under
    # moderate changes", i.e. not catastrophic).
    assert bt_on_cg.degradation_vs_own < 0.60
