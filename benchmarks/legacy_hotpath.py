"""Vendored pre-optimization synthesis hot path (the PR baseline).

``bench_synthesis_hotpath`` must compare the transactional / memoized /
preview-evaluated pipeline against what the code did *before* that
overhaul — snapshot-copy candidate evaluation over a state whose
indexes were recomputed by scanning ``pipe_comms``.  Simply flipping
the ``Partitioner(transactional=False, memoize=False)`` knobs is not a
faithful baseline: the knobs keep the rewritten state class, whose
incremental aggregates accelerate even the legacy evaluation strategy.
So this module vendors the pre-PR implementations verbatim:

* :class:`LegacySynthesisState` — deep ``snapshot()``/``restore()``,
  frozenset-keyed estimate cache popped on invalidation, ``pipes()`` /
  ``pipes_of()`` / ``total_links()`` scanning every pipe, O(n**2)
  ``normalize_path``;
* the snapshot-per-candidate move/route/reroute strategies;
* direct (unmemoized) exact coloring at finalization.

:func:`legacy_baseline` patches them into the partition pipeline so a
``Partitioner`` run inside the context executes the original code end
to end.  The two arms must produce bit-identical ``PartitionResult``s —
the equivalence test in the bench enforces it.
"""

from __future__ import annotations

import contextlib
import importlib
import math
import random
import sys
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import SynthesisError
from repro.model.cliques import CliqueAnalysis
from repro.model.message import Communication
from repro.synthesis.coloring import exact_coloring
from repro.synthesis.conflict_graph import build_conflict_graph
from repro.synthesis.constraints import DesignConstraints
from repro.synthesis.fast_color import fast_color

SwitchPath = Tuple[int, ...]
PipeKey = Tuple[int, int]

BALANCE_LIMIT = 2
_MAX_PASSES = 50


def legacy_normalize_path(path: Sequence[int]) -> SwitchPath:
    """The original quadratic loop-splicing normalization."""
    out: List[int] = []
    for s in path:
        if s in out:
            del out[out.index(s) + 1 :]
        else:
            out.append(s)
    return tuple(out)


class _LegacyColorMemo:
    """Inert stand-in so ``Partitioner.run`` can poke the memo knobs."""

    def __init__(self) -> None:
        self.enabled = False
        self.fast_hits = 0
        self.fast_misses = 0
        self.exact_hits = 0
        self.exact_misses = 0


@dataclass
class LegacyStateSnapshot:
    """A restorable copy of the mutable parts of the legacy state."""

    switch_procs: Dict[int, Set[int]]
    proc_switch: Dict[int, int]
    routes: Dict[Communication, SwitchPath]
    pipe_comms: Dict[PipeKey, Set[Communication]]
    estimates: Dict[FrozenSet[int], int]
    next_switch: int


class LegacySynthesisState:
    """The pre-overhaul ``SynthesisState``, verbatim."""

    def __init__(self, analysis: CliqueAnalysis) -> None:
        self.analysis = analysis
        self.max_cliques = analysis.max_cliques
        self.comms: Tuple[Communication, ...] = tuple(sorted(analysis.communications))
        self.num_processors = analysis.pattern.num_processes
        self.switch_procs: Dict[int, Set[int]] = {}
        self.proc_switch: Dict[int, int] = {}
        self.routes: Dict[Communication, SwitchPath] = {}
        self.pipe_comms: Dict[PipeKey, Set[Communication]] = {}
        self._estimates: Dict[FrozenSet[int], int] = {}
        self._next_switch = 0
        # Attributes Partitioner.run sets/reads on the modern state;
        # inert here (the legacy arm has no transactions and no memo).
        self.transactional = False
        self.color_memo = _LegacyColorMemo()
        self.txn_reverts = 0

    @classmethod
    def initial(cls, analysis: CliqueAnalysis) -> "LegacySynthesisState":
        state = cls(analysis)
        mega = state._new_switch()
        for p in range(state.num_processors):
            state.switch_procs[mega].add(p)
            state.proc_switch[p] = mega
        for comm in state.comms:
            state.routes[comm] = (mega,)
        return state

    # -- switches ------------------------------------------------------

    def _new_switch(self) -> int:
        sid = self._next_switch
        self._next_switch += 1
        self.switch_procs[sid] = set()
        return sid

    @property
    def switches(self) -> Tuple[int, ...]:
        return tuple(sorted(self.switch_procs))

    def switch_of(self, processor: int) -> int:
        return self.proc_switch[processor]

    # -- routes and pipes ----------------------------------------------

    def route_of(self, comm: Communication) -> SwitchPath:
        return self.routes[comm]

    def set_route(self, comm: Communication, path: Sequence[int]) -> None:
        new_path = legacy_normalize_path(path)
        self._check_route(comm, new_path)
        old_path = self.routes.get(comm)
        if old_path == new_path:
            return
        if old_path is not None:
            for u, v in zip(old_path, old_path[1:]):
                self.pipe_comms[(u, v)].discard(comm)
                self._estimates.pop(frozenset((u, v)), None)
        for u, v in zip(new_path, new_path[1:]):
            self.pipe_comms.setdefault((u, v), set()).add(comm)
            self._estimates.pop(frozenset((u, v)), None)
        self.routes[comm] = new_path

    def _check_route(self, comm: Communication, path: SwitchPath) -> None:
        if not path:
            raise SynthesisError(f"empty route for {comm}")
        if path[0] != self.proc_switch[comm.source]:
            raise SynthesisError(
                f"route for {comm} starts at S{path[0]}, "
                f"but its source sits on S{self.proc_switch[comm.source]}"
            )
        if path[-1] != self.proc_switch[comm.dest]:
            raise SynthesisError(
                f"route for {comm} ends at S{path[-1]}, "
                f"but its destination sits on S{self.proc_switch[comm.dest]}"
            )
        for s in path:
            if s not in self.switch_procs:
                raise SynthesisError(f"route for {comm} visits unknown switch S{s}")

    def pipe_forward(self, u: int, v: int) -> FrozenSet[Communication]:
        return frozenset(self.pipe_comms.get((u, v), ()))

    def pipes(self) -> Tuple[FrozenSet[int], ...]:
        seen = set()
        for (u, v), comms in self.pipe_comms.items():
            if comms:
                seen.add(frozenset((u, v)))
        return tuple(sorted(seen, key=sorted))

    def pipes_of(self, switch: int) -> Tuple[int, ...]:
        out = set()
        for (u, v), comms in self.pipe_comms.items():
            if comms:
                if u == switch:
                    out.add(v)
                elif v == switch:
                    out.add(u)
        return tuple(sorted(out))

    def pipe_estimate(self, u: int, v: int) -> int:
        key = frozenset((u, v))
        cached = self._estimates.get(key)
        if cached is not None:
            return cached
        est = fast_color(self.pipe_forward(u, v), self.pipe_forward(v, u), self.max_cliques)
        self._estimates[key] = est
        return est

    def estimated_degree(self, switch: int) -> int:
        return len(self.switch_procs[switch]) + sum(
            self.pipe_estimate(switch, other) for other in self.pipes_of(switch)
        )

    def total_links(self) -> int:
        return sum(self.pipe_estimate(*sorted(pair)) for pair in self.pipes())

    def all_estimated_degrees(self) -> Dict[int, int]:
        deg = {s: len(procs) for s, procs in self.switch_procs.items()}
        seen = set()
        for (u, v), comms in self.pipe_comms.items():
            if not comms:
                continue
            key = frozenset((u, v))
            if key in seen:
                continue
            seen.add(key)
            est = self.pipe_estimate(u, v)
            deg[u] += est
            deg[v] += est
        return deg

    def objective(self, max_degree: int) -> Tuple[int, int]:
        deg = self.all_estimated_degrees()
        excess = sum(max(0, d - max_degree) for d in deg.values())
        return (excess, self.total_links())

    def local_links(self, switches: Iterable[int]) -> int:
        pairs = set()
        for s in switches:
            for other in self.pipes_of(s):
                pairs.add(frozenset((s, other)))
        return sum(self.pipe_estimate(*sorted(pair)) for pair in pairs)

    # -- partitioning moves ---------------------------------------------

    def split_switch(self, si: int, rng: random.Random) -> int:
        procs = sorted(self.switch_procs[si])
        if len(procs) < 2:
            raise SynthesisError(f"cannot split switch S{si} with {len(procs)} processor(s)")
        sj = self._new_switch()
        moved = rng.sample(procs, len(procs) // 2)
        for p in moved:
            self.switch_procs[si].discard(p)
            self.switch_procs[sj].add(p)
            self.proc_switch[p] = sj
        for comm in self.comms:
            path = self.routes[comm]
            if si in path or self.proc_switch[comm.source] == sj or self.proc_switch[comm.dest] == sj:
                self.set_route(comm, self._endpoint_adjusted(comm, path))
        return sj

    def move_processor(self, processor: int, to_switch: int) -> None:
        frm = self.proc_switch[processor]
        if frm == to_switch:
            return
        if to_switch not in self.switch_procs:
            raise SynthesisError(f"no switch S{to_switch}")
        self.switch_procs[frm].discard(processor)
        self.switch_procs[to_switch].add(processor)
        self.proc_switch[processor] = to_switch
        for comm in self.comms:
            if comm.source == processor or comm.dest == processor:
                self.set_route(comm, self._endpoint_adjusted(comm, self.routes[comm]))

    def _endpoint_adjusted(self, comm: Communication, path: SwitchPath) -> SwitchPath:
        src = self.proc_switch[comm.source]
        dst = self.proc_switch[comm.dest]
        if src == dst:
            return (src,)
        return legacy_normalize_path([src, *path[1:-1], dst])

    # -- snapshots -------------------------------------------------------

    def snapshot(self) -> LegacyStateSnapshot:
        return LegacyStateSnapshot(
            switch_procs={s: set(ps) for s, ps in self.switch_procs.items()},
            proc_switch=dict(self.proc_switch),
            routes=dict(self.routes),
            pipe_comms={k: set(v) for k, v in self.pipe_comms.items()},
            estimates=dict(self._estimates),
            next_switch=self._next_switch,
        )

    def restore(self, snap: LegacyStateSnapshot) -> None:
        self.switch_procs = {s: set(ps) for s, ps in snap.switch_procs.items()}
        self.proc_switch = dict(snap.proc_switch)
        self.routes = dict(snap.routes)
        self.pipe_comms = {k: set(v) for k, v in snap.pipe_comms.items()}
        self._estimates = dict(snap.estimates)
        self._next_switch = snap.next_switch


# -- legacy Best_Route ---------------------------------------------------


def legacy_best_route(state, si: int, sj: int) -> int:
    committed = 0
    for _ in range(_MAX_PASSES):
        moved = _legacy_one_pass(state, si, sj) + _legacy_one_pass(state, sj, si)
        committed += moved
        if moved == 0:
            break
    return committed


def _legacy_one_pass(state, si: int, sj: int) -> int:
    moves = 0
    for sk in state.pipes_of(si):
        if sk == sj:
            continue
        for comm in sorted(state.pipe_forward(si, sk) | state.pipe_forward(sk, si)):
            if _legacy_try_reroute(state, comm, _legacy_detour(state.route_of(comm), si, sj, sk)):
                moves += 1
        for comm in sorted(state.pipe_forward(si, sj) | state.pipe_forward(sj, si)):
            if _legacy_try_reroute(state, comm, _legacy_undetour(state.route_of(comm), si, sj, sk)):
                moves += 1
    return moves


def _legacy_detour(path: SwitchPath, si: int, sj: int, sk: int) -> SwitchPath:
    if sj in path:
        return path
    out: List[int] = []
    for idx, s in enumerate(path):
        out.append(s)
        if idx + 1 < len(path):
            nxt = path[idx + 1]
            if (s, nxt) in ((si, sk), (sk, si)):
                out.append(sj)
    return legacy_normalize_path(out)


def _legacy_undetour(path: SwitchPath, si: int, sj: int, sk: int) -> SwitchPath:
    out: List[int] = []
    n = len(path)
    idx = 0
    while idx < n:
        s = path[idx]
        if (
            0 < idx < n - 1
            and s == sj
            and (path[idx - 1], path[idx + 1]) in ((si, sk), (sk, si))
        ):
            idx += 1
            continue
        out.append(s)
        idx += 1
    return legacy_normalize_path(out)


def _legacy_try_reroute(state, comm: Communication, new_path: SwitchPath) -> bool:
    old_path = state.route_of(comm)
    if new_path == old_path:
        return False
    affected = set(old_path) | set(new_path)
    before = state.local_links(affected)
    state.set_route(comm, new_path)
    after = state.local_links(affected)
    if after < before:
        return True
    state.set_route(comm, old_path)
    return False


# -- legacy processor moves ----------------------------------------------


@dataclass(frozen=True)
class _LegacyProcessorMove:
    processor: int
    to_switch: int
    predicted_links: int


def _legacy_balanced_after(state, si: int, sj: int, proc: int, to: int) -> bool:
    ni = len(state.switch_procs[si])
    nj = len(state.switch_procs[sj])
    if to == sj:
        ni, nj = ni - 1, nj + 1
    else:
        ni, nj = ni + 1, nj - 1
    if min(ni, nj) < 1:
        return False
    return abs(ni - nj) <= BALANCE_LIMIT


def _legacy_score(state, si: int, sj: int) -> Tuple[int, int]:
    links = state.local_links(_legacy_affected_switches(state, si, sj))
    traffic = 0
    for (u, v), comms in state.pipe_comms.items():
        if u in (si, sj) or v in (si, sj):
            traffic += len(comms)
    return (links, traffic)


def _legacy_affected_switches(state, si: int, sj: int) -> Tuple[int, ...]:
    return tuple({si, sj, *state.pipes_of(si), *state.pipes_of(sj)})


def legacy_best_processor_move(state, si: int, sj: int) -> Optional[_LegacyProcessorMove]:
    current = _legacy_score(state, si, sj)
    best: Optional[_LegacyProcessorMove] = None
    best_score = current
    candidates = [
        (p, sj) for p in sorted(state.switch_procs[si])
    ] + [
        (p, si) for p in sorted(state.switch_procs[sj])
    ]
    snap = state.snapshot()
    for proc, to in candidates:
        if not _legacy_balanced_after(state, si, sj, proc, to):
            continue
        state.move_processor(proc, to)
        predicted = _legacy_score(state, si, sj)
        state.restore(snap)
        if predicted < best_score:
            best = _LegacyProcessorMove(
                processor=proc, to_switch=to, predicted_links=predicted[0]
            )
            best_score = predicted
    return best


def legacy_annealed_moves(
    state,
    si: int,
    sj: int,
    rng: random.Random,
    steps: int = 80,
    initial_temperature: float = 3.0,
    cooling: float = 0.94,
) -> int:
    def scalar(score: Tuple[int, int]) -> float:
        links, traffic = score
        return links * 1000.0 + traffic

    current = scalar(_legacy_score(state, si, sj))
    best_snapshot = state.snapshot()
    best = current
    accepted = 0
    temperature = initial_temperature
    for _ in range(steps):
        candidates = [
            (p, sj) for p in sorted(state.switch_procs[si])
        ] + [
            (p, si) for p in sorted(state.switch_procs[sj])
        ]
        candidates = [
            (p, to) for p, to in candidates if _legacy_balanced_after(state, si, sj, p, to)
        ]
        if not candidates:
            break
        proc, to = rng.choice(candidates)
        snap = state.snapshot()
        state.move_processor(proc, to)
        candidate = scalar(_legacy_score(state, si, sj))
        delta = candidate - current
        if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-9)):
            current = candidate
            accepted += 1
            if current < best:
                best = current
                best_snapshot = state.snapshot()
        else:
            state.restore(snap)
        temperature *= cooling
    state.restore(best_snapshot)
    return accepted


# -- legacy global rerouting ----------------------------------------------


def _legacy_objective(state, constraints: DesignConstraints) -> Tuple[int, int]:
    return state.objective(constraints.max_degree)


def legacy_reduce_degree_violations(
    state,
    constraints: DesignConstraints,
    max_rounds: int = 30,
) -> int:
    moves = 0
    for _ in range(max_rounds):
        violators = [
            s
            for s in state.switches
            if state.estimated_degree(s) > constraints.max_degree
        ]
        if not violators:
            break
        improved = False
        for s in sorted(violators, key=state.estimated_degree, reverse=True):
            for k in state.pipes_of(s):
                crossing = sorted(
                    state.pipe_forward(s, k) | state.pipe_forward(k, s)
                )
                for comm in crossing:
                    if _legacy_improve_comm(state, constraints, comm, s, k):
                        moves += 1
                        improved = True
            for k in state.pipes_of(s):
                if _legacy_try_eliminate_pipe(state, constraints, s, k):
                    moves += 1
                    improved = True
        if not improved:
            break
    return moves


def _legacy_improve_comm(state, constraints, comm: Communication, s: int, k: int) -> bool:
    old_path = state.route_of(comm)
    if not _legacy_uses_hop(old_path, s, k):
        return False
    before = _legacy_objective(state, constraints)
    for candidate in _legacy_candidate_paths(state, old_path, s, k):
        state.set_route(comm, candidate)
        if _legacy_objective(state, constraints) < before:
            return True
        state.set_route(comm, old_path)
    return False


def _legacy_try_eliminate_pipe(state, constraints, s: int, k: int) -> bool:
    crossing = sorted(state.pipe_forward(s, k) | state.pipe_forward(k, s))
    if not crossing:
        return False
    before = _legacy_objective(state, constraints)
    snap = state.snapshot()
    for comm in crossing:
        path = state.route_of(comm)
        if not _legacy_uses_hop(path, s, k):
            continue
        best_path = None
        best_score = None
        for candidate in _legacy_candidate_paths(state, path, s, k):
            if _legacy_uses_hop(candidate, s, k):
                continue
            state.set_route(comm, candidate)
            score = _legacy_objective(state, constraints)
            if best_score is None or score < best_score:
                best_score = score
                best_path = candidate
            state.set_route(comm, path)
        if best_path is None:
            state.restore(snap)
            return False
        state.set_route(comm, best_path)
    if _legacy_objective(state, constraints) < before:
        return True
    state.restore(snap)
    return False


def legacy_global_processor_moves(
    state,
    constraints: DesignConstraints,
    max_rounds: int = 10,
) -> int:
    moves = 0
    for _ in range(max_rounds):
        violators = [
            s
            for s in state.switches
            if state.estimated_degree(s) > constraints.max_degree
        ]
        if not violators:
            break
        improved = False
        for s in violators:
            if not state.switch_procs[s]:
                continue
            before = _legacy_objective(state, constraints)
            snap = state.snapshot()
            for proc in sorted(state.switch_procs[s]):
                for target in state.switches:
                    if target == s:
                        continue
                    state.move_processor(proc, target)
                    if _legacy_objective(state, constraints) < before:
                        moves += 1
                        improved = True
                        break
                    state.restore(snap)
                if improved:
                    break
            if improved:
                break
        if not improved:
            break
    return moves


def _legacy_uses_hop(path: SwitchPath, s: int, k: int) -> bool:
    return any(pair in ((s, k), (k, s)) for pair in zip(path, path[1:]))


def _legacy_candidate_paths(state, path: SwitchPath, s: int, k: int) -> List[SwitchPath]:
    out: List[SwitchPath] = []
    seen = {path}
    candidates = sorted(set(state.pipes_of(s)) | set(state.pipes_of(k)))
    for m in candidates:
        if m in path:
            continue
        detoured: List[int] = []
        for idx, node in enumerate(path):
            detoured.append(node)
            if idx + 1 < len(path) and (node, path[idx + 1]) in ((s, k), (k, s)):
                detoured.append(m)
        candidate = legacy_normalize_path(detoured)
        if candidate not in seen:
            seen.add(candidate)
            out.append(candidate)
    for idx in range(1, len(path) - 1):
        candidate = legacy_normalize_path(path[:idx] + path[idx + 1 :])
        if candidate not in seen:
            seen.add(candidate)
            out.append(candidate)
    return out


# -- legacy finalization ---------------------------------------------------


def _legacy_finalize_pipes(state):
    """Exact-color every pipe directly, bypassing the coloring memo."""
    part_mod = sys.modules["repro.synthesis.partition"]
    finals = {}
    for pair in state.pipes():
        u, v = sorted(pair)
        fwd = state.pipe_forward(u, v)
        bwd = state.pipe_forward(v, u)
        k_f, colors_f = exact_coloring(build_conflict_graph(fwd, state.max_cliques))
        k_b, colors_b = exact_coloring(build_conflict_graph(bwd, state.max_cliques))
        finals[frozenset(pair)] = part_mod.PipeFinal(
            switches=(u, v),
            width=max(k_f, k_b),
            forward_colors=colors_f,
            backward_colors=colors_b,
        )
    return finals


@contextlib.contextmanager
def legacy_baseline():
    """Run ``Partitioner`` pipelines on the vendored pre-PR hot path.

    Patches every strategy entry point the partition driver dispatches
    through — the state class, ``Best_Route``, the processor-move
    evaluators, the global reroute passes, and pipe finalization — so
    the algorithmic decision sequence is the original one, driven by
    the same seeded RNG.
    """
    importlib.import_module("repro.synthesis.partition")
    part_mod = sys.modules["repro.synthesis.partition"]
    # The overhaul also caches Communication.__hash__; the legacy arm
    # must hash tuples on every set operation like the original did.
    # The computed value is unchanged, so set iteration order — and
    # therefore every coloring — is identical across arms.
    cached_hash = Communication.__hash__
    Communication.__hash__ = _legacy_comm_hash
    originals = {
        "SynthesisState": part_mod.SynthesisState,
        "best_route": part_mod.best_route,
        "annealed_moves": part_mod.annealed_moves,
        "best_processor_move": part_mod.best_processor_move,
        "reduce_degree_violations": part_mod.reduce_degree_violations,
        "global_processor_moves": part_mod.global_processor_moves,
        "finalize_pipes": part_mod.finalize_pipes,
    }
    part_mod.SynthesisState = LegacySynthesisState
    part_mod.best_route = legacy_best_route
    part_mod.annealed_moves = legacy_annealed_moves
    part_mod.best_processor_move = legacy_best_processor_move
    part_mod.reduce_degree_violations = legacy_reduce_degree_violations
    part_mod.global_processor_moves = legacy_global_processor_moves
    part_mod.finalize_pipes = _legacy_finalize_pipes
    try:
        yield
    finally:
        Communication.__hash__ = cached_hash
        for name, fn in originals.items():
            setattr(part_mod, name, fn)


def _legacy_comm_hash(self) -> int:
    return hash((self.source, self.dest))
